"""Unit tests for Table and Catalog."""

import numpy as np
import pytest

from repro.storage import Catalog, Table


def test_table_basic_properties():
    table = Table("t", {"a": [1, 2, 3], "b": [4, 5, 6]})
    assert len(table) == 3
    assert table.column_names == ["a", "b"]
    assert table.column("a").dtype == np.int64


def test_table_rejects_mismatched_lengths():
    with pytest.raises(ValueError, match="length"):
        Table("t", {"a": [1, 2], "b": [1]})


def test_table_rejects_empty_schema():
    with pytest.raises(ValueError, match="at least one column"):
        Table("t", {})


def test_table_unknown_column_message():
    table = Table("t", {"a": [1]})
    with pytest.raises(KeyError, match="no column 'z'"):
        table.column("z")


def test_distinct_count():
    table = Table("t", {"a": [1, 1, 2, 3, 3, 3]})
    assert table.distinct_count("a") == 3


def test_gather_selects_rows_and_columns():
    table = Table("t", {"a": [10, 20, 30], "b": [1, 2, 3]})
    got = table.gather([2, 0], columns=["b"])
    assert list(got) == ["b"]
    assert got["b"].tolist() == [3, 1]


def test_chunks_iteration():
    table = Table("t", {"a": np.arange(5)})
    chunks = list(table.chunks(chunk_size=2))
    assert [len(c) for c in chunks] == [2, 2, 1]


def test_catalog_registration_and_lookup():
    catalog = Catalog()
    catalog.add_table("t", {"a": [1, 2]})
    assert "t" in catalog
    assert catalog.table_names == ["t"]
    assert len(catalog.table("t")) == 2


def test_catalog_unknown_table_message():
    catalog = Catalog()
    with pytest.raises(KeyError, match="no table named 'x'"):
        catalog.table("x")


def test_catalog_rejects_non_table():
    catalog = Catalog()
    with pytest.raises(TypeError, match="expected Table"):
        catalog.add({"a": [1]})


def test_hash_index_cached_and_invalidated():
    catalog = Catalog()
    catalog.add_table("t", {"a": [1, 2, 2]})
    idx1 = catalog.hash_index("t", "a")
    idx2 = catalog.hash_index("t", "a")
    assert idx1 is idx2
    # Replacing the table drops the cache.
    catalog.add_table("t", {"a": [5, 5]})
    idx3 = catalog.hash_index("t", "a")
    assert idx3 is not idx1
    assert idx3.num_distinct == 1


def test_invalidate_indexes_scoped():
    catalog = Catalog()
    catalog.add_table("t", {"a": [1]})
    catalog.add_table("u", {"a": [1]})
    idx_t = catalog.hash_index("t", "a")
    idx_u = catalog.hash_index("u", "a")
    catalog.invalidate_indexes("t")
    assert catalog.hash_index("t", "a") is not idx_t
    assert catalog.hash_index("u", "a") is idx_u
    catalog.invalidate_indexes()
    assert catalog.hash_index("u", "a") is not idx_u


# ----------------------------------------------------------------------
# Derived catalogs and index invalidation (regression: a derivative
# must never serve a stale index over arrays it shares with its parent)
# ----------------------------------------------------------------------


def test_derived_catalog_snapshot_survives_parent_replacement():
    parent = Catalog()
    parent.add_table("t", {"a": [1, 2, 2]})
    parent.add_table("u", {"a": [9]})
    old_index = parent.hash_index("t", "a")
    derived = parent.derived_with({"u": Table("u", {"a": [7]})})
    # Replacing t in the parent must not corrupt the derivative: its
    # snapshot keeps the old table, and its index stays consistent
    # with that snapshot.
    parent.add_table("t", {"a": [5]})
    assert derived.table("t").column("a").tolist() == [1, 2, 2]
    assert derived.hash_index("t", "a") is old_index
    assert sorted(derived.hash_index("t", "a").rows_for_key(2).tolist()) == [1, 2]
    # while the parent itself rebuilt
    assert parent.hash_index("t", "a") is not old_index


def test_parent_invalidation_reaches_derived_catalog():
    parent = Catalog()
    parent.add_table("t", {"a": [1, 2, 2]})
    parent.add_table("u", {"a": [9]})
    derived = parent.derived_with({"u": Table("u", {"a": [7]})})
    stale = derived.hash_index("t", "a")
    assert stale.rows_for_key(1).tolist() == [0]
    # In-place mutation of the shared arrays, acknowledged on the
    # parent only — the derivative shares those arrays, so its cached
    # index must be dropped too.
    parent.table("t").column("a")[0] = 2
    parent.invalidate_indexes("t")
    rebuilt = derived.hash_index("t", "a")
    assert rebuilt is not stale
    assert sorted(rebuilt.rows_for_key(2).tolist()) == [0, 1, 2]


def test_parent_invalidation_spares_replaced_tables_in_derived():
    parent = Catalog()
    parent.add_table("t", {"a": [1, 2]})
    derived = parent.derived_with({"t": Table("t", {"a": [5, 5]})})
    own_index = derived.hash_index("t", "a")
    parent.invalidate_indexes("t")
    # the derivative's t is its own replacement, not shared: keep it
    assert derived.hash_index("t", "a") is own_index


def test_full_invalidation_propagates_through_derivation_chain():
    parent = Catalog()
    parent.add_table("t", {"a": [1, 1]})
    middle = parent.derived_with({})
    leaf = middle.derived_with({})
    stale = leaf.hash_index("t", "a")
    parent.table("t").column("a")[:] = [3, 4]
    parent.invalidate_indexes()
    rebuilt = leaf.hash_index("t", "a")
    assert rebuilt is not stale
    assert rebuilt.num_distinct == 2
