"""Property: replanning never changes answers, only plans.

The replan-equivalence sweep the robustness issue requires: with
replanning forced on (hair-trigger threshold against corrupted
statistics) and off, across shard counts {1, 2, 8}, both execution
kernels and acyclic/cyclic shapes, results must be identical tuple for
tuple — and, because results are base-row-id tuples here, identical
base-row-id sets — and must match the brute-force reference.
"""

import numpy as np
import pytest

from repro import QuerySession
from repro.storage import Catalog

from tests.helpers import (
    StatsCorruptingCatalog,
    brute_force_join,
    make_running_example_query,
    make_small_catalog,
    result_tuples,
)

SHARD_COUNTS = (1, 2, 8)
EXECUTIONS = ("vectorized", "interpreted")
#: trips on any estimate that is even marginally wrong — forces the
#: replan machinery through every monitored execution
HAIR_TRIGGER = 1.000001

#: every relation's statistics lie in a different direction
SWEEP_CORRUPTION = {"R2": 0.02, "R5": 40.0, "R3": 0.1, "R6": 25.0}

CYCLIC_SQL = (
    "select * from A, B, C where A.x = B.x and A.y = C.y and B.z = C.z"
)


def make_cyclic_catalog(seed=11):
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    catalog.add_table("A", {"x": rng.integers(0, 6, 30),
                            "y": rng.integers(0, 6, 30)})
    catalog.add_table("B", {"x": rng.integers(0, 6, 25),
                            "z": rng.integers(0, 6, 25)})
    catalog.add_table("C", {"y": rng.integers(0, 6, 20),
                            "z": rng.integers(0, 6, 20)})
    return catalog


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
@pytest.mark.parametrize("execution", EXECUTIONS)
def test_replan_equivalence_acyclic(num_shards, execution):
    catalog = make_small_catalog()
    corrupted = StatsCorruptingCatalog(catalog, SWEEP_CORRUPTION)
    query = make_running_example_query()
    expected = brute_force_join(catalog, query)

    forced = QuerySession(
        corrupted, robustness="auto", replan_threshold=HAIR_TRIGGER,
        partitioning=num_shards, execution=execution,
    ).execute(query, mode="STD", collect_output=True)
    off = QuerySession(
        corrupted, robustness="off",
        partitioning=num_shards, execution=execution,
    ).execute(query, mode="STD", collect_output=True)

    context = (num_shards, execution)
    assert forced.ok and off.ok, context
    # bit-identical base-row-id tuple sets, and both match brute force
    assert result_tuples(forced.result, query) == expected, context
    assert result_tuples(off.result, query) == expected, context
    # the corruption is strong enough that the hair trigger really
    # exercised the machinery on every configuration
    assert forced.replans >= 1, context
    assert off.replans == 0, context


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
@pytest.mark.parametrize("execution", EXECUTIONS)
def test_replan_equivalence_cyclic(num_shards, execution):
    """Cyclic plans run unmonitored: forced-on must equal off exactly."""
    catalog = make_cyclic_catalog()
    forced = QuerySession(
        catalog, robustness="auto", replan_threshold=HAIR_TRIGGER,
        partitioning=num_shards, execution=execution,
    ).execute(CYCLIC_SQL, collect_output=True)
    off = QuerySession(
        catalog, robustness="off",
        partitioning=num_shards, execution=execution,
    ).execute(CYCLIC_SQL, collect_output=True)

    context = (num_shards, execution)
    assert forced.ok and off.ok, context
    assert forced.replans == 0, context
    query = forced.plan.query
    assert result_tuples(forced.result, query) == \
        result_tuples(off.result, off.plan.query), context


def test_replan_equivalence_across_seeds():
    """Different data draws: the sweep is not tuned to one catalog."""
    query = make_running_example_query()
    for seed in (1, 7, 19):
        catalog = make_small_catalog(seed=seed)
        corrupted = StatsCorruptingCatalog(catalog, SWEEP_CORRUPTION)
        expected = brute_force_join(catalog, query)
        forced = QuerySession(
            corrupted, robustness="auto", replan_threshold=HAIR_TRIGGER,
        ).execute(query, mode="STD", collect_output=True)
        assert forced.ok, seed
        assert result_tuples(forced.result, query) == expected, seed
