"""Property tests for the analytic cost model.

Invariants checked on random join trees and random statistics:

* survival probabilities lie in [0, 1];
* Eq. (1) probe counts depend only on the prefix *set*, not its order;
* COM probes never exceed STD probes, and coincide when every fo = 1;
* BVP with eps = 0 never probes hash tables more than the base model;
* the SJ adjustment identities of Theorem 3.4;
* Theorem 3.5: SJ+COM phase-2 cost is order-independent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    bvp_plan_cost,
    com_probes_per_join,
    sj_plan_cost,
    std_probes_per_join,
    survival_probability,
)
from repro.core.stats import EdgeStats, QueryStats
from repro.workloads.random_trees import random_join_tree


@st.composite
def tree_and_stats(draw, max_nodes=9):
    tree_seed = draw(st.integers(0, 10_000))
    query = random_join_tree(max_nodes=max_nodes, seed=tree_seed)
    edge_stats = {}
    for relation in query.non_root_relations:
        m = draw(st.floats(0.01, 1.0))
        fo = draw(st.floats(1.0, 10.0))
        edge_stats[relation] = EdgeStats(m=m, fo=fo)
    driver = draw(st.floats(1.0, 10_000.0))
    stats = QueryStats(driver, edge_stats)
    return query, stats


@given(case=tree_and_stats())
@settings(max_examples=60, deadline=None)
def test_survival_in_unit_interval(case):
    query, stats = case
    members = set(query.relations)
    value = survival_probability(query, stats, members)
    assert 0.0 <= value <= 1.0 + 1e-12


@given(case=tree_and_stats(max_nodes=7), seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_eq1_depends_only_on_prefix_set(case, seed):
    query, stats = case
    rng = np.random.default_rng(seed)
    order_a = query.random_order(rng)
    order_b = query.random_order(rng)
    last = order_a[-1]
    if order_b[-1] != last:
        order_b = [r for r in order_b if r != last] + [last]
        if not query.is_valid_order(order_b):
            return  # the reshuffle may break precedence; skip
    probes_a = com_probes_per_join(query, stats, order_a)[last]
    probes_b = com_probes_per_join(query, stats, order_b)[last]
    assert probes_a == pytest.approx(probes_b)


@given(case=tree_and_stats(), seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_com_bounded_by_std(case, seed):
    query, stats = case
    order = query.random_order(np.random.default_rng(seed))
    com = com_probes_per_join(query, stats, order)
    std = std_probes_per_join(query, stats, order)
    for relation in order:
        assert com[relation] <= std[relation] * (1 + 1e-9) + 1e-9


@given(case=tree_and_stats(), seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_com_equals_std_with_unit_fanouts(case, seed):
    query, stats = case
    for relation in query.non_root_relations:
        stats = stats.with_edge(relation,
                                EdgeStats(m=stats.m(relation), fo=1.0))
    order = query.random_order(np.random.default_rng(seed))
    com = com_probes_per_join(query, stats, order)
    std = std_probes_per_join(query, stats, order)
    for relation in order:
        assert com[relation] == pytest.approx(std[relation])


@given(case=tree_and_stats(max_nodes=7), seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_bvp_eps_zero_prunes(case, seed):
    query, stats = case
    order = query.random_order(np.random.default_rng(seed))
    for factorized, base_fn in ((False, std_probes_per_join),
                                (True, com_probes_per_join)):
        cost = bvp_plan_cost(query, stats, order, eps=0.0,
                             factorized=factorized)
        base = base_fn(query, stats, order)
        for relation in order:
            assert (
                cost.hash_probes_by_relation[relation]
                <= base[relation] * (1 + 1e-9) + 1e-9
            )


@given(case=tree_and_stats(max_nodes=7), seeds=st.tuples(
    st.integers(0, 2**16), st.integers(0, 2**16)))
@settings(max_examples=40, deadline=None)
def test_theorem_35_on_random_trees(case, seeds):
    query, stats = case
    rng_a, rng_b = (np.random.default_rng(s) for s in seeds)
    order_a = query.random_order(rng_a)
    order_b = query.random_order(rng_b)
    cost_a = sj_plan_cost(query, stats, order_a, factorized=True,
                          flat_output=False)
    cost_b = sj_plan_cost(query, stats, order_b, factorized=True,
                          flat_output=False)
    assert cost_a.hash_probes == pytest.approx(cost_b.hash_probes)
    assert cost_a.semijoin_probes == pytest.approx(cost_b.semijoin_probes)


@given(
    m=st.floats(0.01, 1.0),
    fo=st.floats(1.0, 20.0),
    ratio=st.floats(0.0, 1.0),
)
@settings(max_examples=100, deadline=None)
def test_theorem_34_identities(m, fo, ratio):
    from repro.core import adjusted_fanout, adjusted_match_probability

    m_prime = adjusted_match_probability(m, fo, ratio)
    fo_prime = adjusted_fanout(fo, ratio)
    # s' = ratio * s (up to float rounding in the power).
    assert m_prime * fo_prime == pytest.approx(ratio * m * fo, rel=1e-6,
                                               abs=1e-9)
    # Reduction can only shrink the match probability and fanout.
    assert m_prime <= m * (1 + 1e-9) + 1e-12
    assert fo_prime <= fo * (1 + 1e-6) + 1e-9
    # A surviving child keeps at least one match.
    if ratio > 0:
        assert fo_prime >= 1.0 - 1e-6


@given(case=tree_and_stats(max_nodes=7), seed=st.integers(0, 2**16),
       eps=st.floats(0.0, 0.5))
@settings(max_examples=40, deadline=None)
def test_all_costs_non_negative(case, seed, eps):
    query, stats = case
    order = query.random_order(np.random.default_rng(seed))
    from repro.core import plan_cost
    from repro.modes import ExecutionMode

    for mode in ExecutionMode.all_modes():
        cost = plan_cost(query, stats, order, mode, eps=eps)
        assert cost.hash_probes >= 0
        assert cost.bitvector_probes >= 0
        assert cost.semijoin_probes >= 0
        assert cost.tuples_generated >= 0
