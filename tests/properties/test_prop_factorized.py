"""Property tests for the factorized representation itself."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import JoinEdge, JoinQuery
from repro.engine import FactorizedResult


@st.composite
def random_factorized(draw):
    """A random 3-level factorized result (A -> B -> C, A -> D)."""
    query = JoinQuery("A", [
        JoinEdge("A", "B", "k", "k"),
        JoinEdge("B", "C", "j", "j"),
        JoinEdge("A", "D", "h", "h"),
    ])
    n_a = draw(st.integers(1, 6))
    result = FactorizedResult(query, np.arange(n_a))

    def attach(parent_len, max_children):
        parent_ptr = []
        for parent_idx in range(parent_len):
            count = draw(st.integers(0, max_children))
            parent_ptr.extend([parent_idx] * count)
        rows = np.arange(len(parent_ptr), dtype=np.int64)
        return rows, np.asarray(parent_ptr, dtype=np.int64)

    rows_b, ptr_b = attach(n_a, 3)
    result.add_node("B", rows_b, ptr_b)
    rows_c, ptr_c = attach(len(rows_b), 2)
    result.add_node("C", rows_c, ptr_c)
    rows_d, ptr_d = attach(n_a, 2)
    result.add_node("D", rows_d, ptr_d)
    return result


def reference_count(result):
    """Count flat tuples by explicit nested loops."""
    b = result.node("B")
    c = result.node("C")
    d = result.node("D")
    total = 0
    for a_idx in range(len(result.node("A"))):
        if not result.node("A").alive[a_idx]:
            continue
        d_count = int(
            (d.alive & (d.parent_ptr == a_idx)).sum()
        )
        bc = 0
        for b_idx in np.nonzero(b.alive & (b.parent_ptr == a_idx))[0]:
            bc += int((c.alive & (c.parent_ptr == b_idx)).sum())
        total += bc * d_count
    return total


@given(result=random_factorized())
@settings(max_examples=40, deadline=None)
def test_count_rows_matches_reference(result):
    assert result.count_rows() == reference_count(result)


@given(result=random_factorized())
@settings(max_examples=40, deadline=None)
def test_expand_matches_count(result):
    flat = result.expand_all()
    assert len(flat["A"]) == result.count_rows()


@given(result=random_factorized(), batch=st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_expansion_batch_invariance(result, batch):
    full = result.expand_all()
    batches = list(result.expand(batch_entries=batch))
    if batches:
        combined = np.concatenate([b["A"] for b in batches])
    else:
        combined = np.empty(0, dtype=np.int64)
    assert len(combined) == len(full["A"])
    # Batch order preserves the driver grouping: sorted comparison.
    assert sorted(combined.tolist()) == sorted(full["A"].tolist())


@given(result=random_factorized(), max_rows=st.integers(1, 10))
@settings(max_examples=30, deadline=None)
def test_expansion_max_rows_invariance(result, max_rows):
    full_count = result.count_rows()
    batches = list(result.expand(max_rows=max_rows))
    assert sum(len(b["A"]) for b in batches) == full_count


@given(result=random_factorized())
@settings(max_examples=40, deadline=None)
def test_propagation_idempotent_and_count_preserving(result):
    before = result.count_rows()
    result.propagate_deaths()
    mid = {rel: result.node(rel).alive.copy() for rel in result.joined}
    result.propagate_deaths()
    for rel in result.joined:
        assert np.array_equal(result.node(rel).alive, mid[rel])
    assert result.count_rows() == before


@given(result=random_factorized())
@settings(max_examples=40, deadline=None)
def test_propagation_kills_unproductive_entries(result):
    """After propagation, every alive non-root entry has an alive
    parent, and every alive parent has an alive child in each
    materialized child node."""
    result.propagate_deaths()
    query = result.query
    for rel in result.joined:
        node = result.node(rel)
        if rel != query.root:
            parent = result.node(query.parent(rel))
            alive_idx = node.alive_indices()
            assert parent.alive[node.parent_ptr[alive_idx]].all()
        for child_rel in query.children(rel):
            if child_rel not in result.nodes:
                continue
            child = result.node(child_rel)
            counts = np.bincount(child.parent_ptr[child.alive],
                                 minlength=len(node))
            assert counts[node.alive].all() if node.alive.any() else True
