"""Property test: the interpreted kernels are a bit-exact oracle.

For random acyclic trees and random cyclic (triangle) queries — over
plain and hash-partitioned catalogs, across every execution strategy —
the ``execution="interpreted"`` path must produce the same flat
results, the same factorized expansions, and *bit-identical*
:class:`~repro.engine.executor.ExecutionCounters` as the vectorized
path.  Counter equality is the load-bearing property: the cost model is
calibrated on those counters, so the two data planes must count the
same probes, not merely reach the same answers.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import execute_cyclic, parse_query, spanning_tree_decomposition
from repro.engine import execute
from repro.modes import ExecutionMode
from repro.storage import Catalog, partitioned_catalog
from repro.workloads.random_trees import random_join_tree

from tests.helpers import result_tuples

from .test_prop_cyclic import TRIANGLE, build_triangle_catalog
from .test_prop_engine import build_random_catalog

SHARD_COUNTS = (1, 2, 8)

COUNTER_FIELDS = [f.name for f in dataclasses.fields(
    __import__("repro.engine.executor", fromlist=["ExecutionCounters"])
    .ExecutionCounters
)]


def assert_counters_identical(vect, interp, context=None):
    """Every ExecutionCounters field, bit for bit."""
    for name in COUNTER_FIELDS:
        assert getattr(vect, name) == getattr(interp, name), (name, context)


def assert_rows_identical(vect_rows, interp_rows, context=None):
    assert set(vect_rows) == set(interp_rows), context
    for rel in vect_rows:
        assert np.array_equal(vect_rows[rel], interp_rows[rel]), \
            (rel, context)


@given(
    tree_seed=st.integers(0, 5_000),
    data_seed=st.integers(0, 5_000),
    order_seed=st.integers(0, 5_000),
)
@settings(max_examples=15, deadline=None)
def test_interpreted_matches_vectorized_all_modes(
    tree_seed, data_seed, order_seed
):
    query = random_join_tree(max_nodes=5, seed=tree_seed)
    catalog = build_random_catalog(query, data_seed)
    order = query.random_order(np.random.default_rng(order_seed))
    for mode in ExecutionMode.all_modes():
        vect = execute(catalog, query, order, mode,
                       flat_output=True, collect_output=True,
                       execution="vectorized")
        interp = execute(catalog, query, order, mode,
                         flat_output=True, collect_output=True,
                         execution="interpreted")
        context = (mode, order)
        assert vect.execution == "vectorized"
        assert interp.execution == "interpreted"
        assert interp.output_size == vect.output_size, context
        # identical row arrays, not merely identical tuple sets: the
        # two paths must expand matches in the same order
        assert_rows_identical(vect.output_rows, interp.output_rows, context)
        assert result_tuples(interp, query) == result_tuples(vect, query)
        assert_counters_identical(vect.counters, interp.counters, context)


@given(
    tree_seed=st.integers(0, 5_000),
    data_seed=st.integers(0, 5_000),
)
@settings(max_examples=8, deadline=None)
def test_interpreted_matches_vectorized_across_shard_counts(
    tree_seed, data_seed
):
    query = random_join_tree(max_nodes=4, seed=tree_seed)
    catalog = build_random_catalog(query, data_seed)
    for num_shards in SHARD_COUNTS:
        sharded = partitioned_catalog(catalog, query, num_shards)
        for mode in (ExecutionMode.COM, ExecutionMode.STD,
                     ExecutionMode.SJ_COM):
            vect = execute(sharded, query, mode=mode,
                           flat_output=True, collect_output=True,
                           execution="vectorized")
            interp = execute(sharded, query, mode=mode,
                             flat_output=True, collect_output=True,
                             execution="interpreted")
            context = (mode, num_shards)
            assert interp.output_size == vect.output_size, context
            assert_rows_identical(vect.output_rows, interp.output_rows,
                                  context)
            assert_counters_identical(vect.counters, interp.counters,
                                      context)


@given(
    tree_seed=st.integers(0, 5_000),
    data_seed=st.integers(0, 5_000),
)
@settings(max_examples=10, deadline=None)
def test_interpreted_factorized_expansion_is_identical(tree_seed, data_seed):
    """expand() batches — contents *and* batch boundaries — must agree."""
    query = random_join_tree(max_nodes=5, seed=tree_seed)
    catalog = build_random_catalog(query, data_seed)
    vect = execute(catalog, query, mode=ExecutionMode.COM,
                   flat_output=False, execution="vectorized")
    interp = execute(catalog, query, mode=ExecutionMode.COM,
                     flat_output=False, execution="interpreted")
    assert interp.output_size == vect.output_size
    from repro.engine.kernels import INTERPRETED, VECTORIZED

    vect_batches = list(vect.factorized.expand(batch_entries=3,
                                               kernels=VECTORIZED))
    interp_batches = list(interp.factorized.expand(batch_entries=3,
                                                   kernels=INTERPRETED))
    assert len(vect_batches) == len(interp_batches)
    for vb, ib in zip(vect_batches, interp_batches):
        assert_rows_identical(vb, ib)


@given(seed=st.integers(0, 5_000),
       mode=st.sampled_from(ExecutionMode.all_modes()))
@settings(max_examples=15, deadline=None)
def test_interpreted_matches_vectorized_cyclic(seed, mode):
    catalog = build_triangle_catalog(seed)
    plan = spanning_tree_decomposition(parse_query(TRIANGLE))
    size_v, vect, rows_v = execute_cyclic(
        catalog, plan, mode=mode, collect_output=True,
        execution="vectorized",
    )
    size_i, interp, rows_i = execute_cyclic(
        catalog, plan, mode=mode, collect_output=True,
        execution="interpreted",
    )
    assert size_i == size_v, mode
    assert_rows_identical(rows_v, rows_i, mode)
    assert_counters_identical(vect.counters, interp.counters, mode)
    assert vect.counters.residual_checks == interp.counters.residual_checks


def _edge_case_catalog(query, data_seed):
    """Random catalog with float/NaN, bool and huge-int key columns."""
    rng = np.random.default_rng(data_seed)
    catalog = Catalog()
    casts = [
        lambda v, rng=rng: v.astype(np.int64),
        # floats with NaN holes
        lambda v, rng=rng: np.where(
            rng.random(len(v)) < 0.2, np.nan, v.astype(np.float64)
        ),
        lambda v, rng=rng: (v % 2).astype(bool),
        # magnitudes around 2**53, where float64 upcasts go lossy
        lambda v, rng=rng: v.astype(np.int64) + 2 ** 53,
    ]
    for relation in query.preorder():
        rows = int(rng.integers(1, 13))
        columns = {"payload": np.arange(rows, dtype=np.int64)}
        attrs = set()
        if relation != query.root:
            attrs.add(query.edge_to(relation).child_attr)
        for child in query.children(relation):
            attrs.add(query.edge_to(child).parent_attr)
        for attr in sorted(attrs):
            raw = rng.integers(0, 5, rows)
            columns[attr] = casts[int(rng.integers(0, len(casts)))](raw)
        catalog.add_table(relation, columns)
    return catalog


@given(
    tree_seed=st.integers(0, 5_000),
    data_seed=st.integers(0, 5_000),
)
@settings(max_examples=15, deadline=None)
def test_interpreted_matches_vectorized_on_edge_case_dtypes(
    tree_seed, data_seed
):
    """NaN keys, bools and >=2**53 ints: exact-key semantics on both paths.

    Each attribute independently draws its dtype, so parent/child pairs
    mix int64 against float64/bool/huge-int columns — the upcast
    collisions the kernel layer's comparison-dtype rule exists for.
    """
    query = random_join_tree(max_nodes=4, seed=tree_seed)
    catalog = _edge_case_catalog(query, data_seed)
    for mode in (ExecutionMode.COM, ExecutionMode.STD, ExecutionMode.SJ_COM):
        vect = execute(catalog, query, mode=mode,
                       flat_output=True, collect_output=True,
                       execution="vectorized")
        interp = execute(catalog, query, mode=mode,
                         flat_output=True, collect_output=True,
                         execution="interpreted")
        assert interp.output_size == vect.output_size, mode
        assert_rows_identical(vect.output_rows, interp.output_rows, mode)
        assert_counters_identical(vect.counters, interp.counters, mode)
