"""Property tests for the optimizers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import exhaustive_optimal, greedy_order, optimize_sj
from repro.core.costmodel import com_probes_per_join
from repro.core.optimizer import GREEDY_HEURISTICS
from repro.core.stats import EdgeStats, QueryStats
from repro.workloads.random_trees import random_join_tree


@st.composite
def tree_and_stats(draw, max_nodes=6):
    tree_seed = draw(st.integers(0, 10_000))
    query = random_join_tree(max_nodes=max_nodes, seed=tree_seed)
    edge_stats = {
        relation: EdgeStats(
            m=draw(st.floats(0.05, 0.95)),
            fo=draw(st.floats(1.0, 8.0)),
        )
        for relation in query.non_root_relations
    }
    return query, QueryStats(draw(st.floats(1.0, 1000.0)), edge_stats)


def total_com_probes(query, stats, order):
    return sum(com_probes_per_join(query, stats, order).values())


@given(case=tree_and_stats())
@settings(max_examples=40, deadline=None)
def test_dp_is_global_minimum(case):
    query, stats = case
    plan = exhaustive_optimal(query, stats)
    assert query.is_valid_order(plan.order)
    for order in query.all_orders():
        assert plan.cost <= total_com_probes(query, stats, order) + 1e-9


@given(case=tree_and_stats())
@settings(max_examples=40, deadline=None)
def test_greedy_orders_valid_and_bounded_below_by_dp(case):
    query, stats = case
    optimal = exhaustive_optimal(query, stats)
    for heuristic in GREEDY_HEURISTICS:
        plan = greedy_order(query, stats, heuristic)
        assert query.is_valid_order(plan.order)
        cost = total_com_probes(query, stats, plan.order)
        assert cost >= optimal.cost - 1e-9


@given(case=tree_and_stats())
@settings(max_examples=40, deadline=None)
def test_sj_optimizer_phase1_is_minimal(case):
    """The increasing-m' child order minimizes phase-1 probes among all
    child permutations (checked exhaustively per node)."""
    import itertools

    from repro.core import sj_phase1_cost

    query, stats = case
    plan = optimize_sj(query, stats, factorized=False)
    best, _ = sj_phase1_cost(query, stats, child_orders=plan.child_orders)
    internals = query.internal_relations()
    # Enumerate alternative child orders node by node.
    for node in internals:
        children = query.children(node)
        for perm in itertools.permutations(children):
            orders = dict(plan.child_orders)
            orders[node] = list(perm)
            cost, _ = sj_phase1_cost(query, stats, child_orders=orders)
            assert best.semijoin_probes <= cost.semijoin_probes + 1e-9


@given(case=tree_and_stats(max_nodes=5))
@settings(max_examples=30, deadline=None)
def test_dp_deterministic(case):
    query, stats = case
    a = exhaustive_optimal(query, stats)
    b = exhaustive_optimal(query, stats)
    assert a.order == b.order
    assert a.cost == pytest.approx(b.cost)


@given(case=tree_and_stats(max_nodes=5), scale=st.floats(0.1, 100.0))
@settings(max_examples=30, deadline=None)
def test_dp_invariant_to_driver_scaling(case, scale):
    """Costs are linear in N: scaling the driver leaves the argmin
    unchanged."""
    query, stats = case
    scaled = QueryStats(stats.driver_size * scale, stats.edge_stats)
    a = exhaustive_optimal(query, stats)
    b = exhaustive_optimal(query, scaled)
    assert a.cost * scale == pytest.approx(b.cost, rel=1e-9)
