"""Property test: the async service path is indistinguishable from the
synchronous :class:`~repro.service.QuerySession`.

For random acyclic queries over random data, N concurrent asyncio
clients (optionally over a hash-partitioned layout, optionally with
process-pool planning) must produce the same plans, the same result
sets and the same probe counters as a plain synchronous session —
admission-level parallelism is an implementation detail, never a
semantic change.
"""

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AsyncQueryService, QuerySession
from repro.workloads.random_trees import random_join_tree

from tests.helpers import result_tuples

from .test_prop_engine import build_random_catalog

CLIENTS = 6


def _sync_reference(catalog, query, partitioning):
    session = QuerySession(catalog, partitioning=partitioning)
    report = session.execute(query, collect_output=True)
    return report


def _async_reports(catalog, query, partitioning, copies=CLIENTS,
                   **service_kwargs):
    async def go():
        session = QuerySession(catalog, partitioning=partitioning)
        async with AsyncQueryService(session, **service_kwargs) as service:
            return await service.execute_many([query] * copies,
                                              collect_output=True)

    return asyncio.run(go())


def _assert_equivalent(reports, reference, context):
    expected = None
    if reference.ok:
        expected = result_tuples(reference.result, reference.plan.query)
    for report in reports:
        assert report.ok == reference.ok, (context, report.error)
        assert report.timed_out == reference.timed_out, context
        if not reference.ok:
            continue
        assert report.plan.order == reference.plan.order, context
        assert report.plan.predicted_cost == \
            reference.plan.predicted_cost, context
        assert result_tuples(report.result, report.plan.query) == \
            expected, context
        ours, theirs = report.result.counters, reference.result.counters
        assert ours.hash_probes == theirs.hash_probes, context
        assert ours.hash_probes_by_relation == \
            theirs.hash_probes_by_relation, context
        assert ours.bitvector_probes == theirs.bitvector_probes, context
        assert ours.semijoin_probes == theirs.semijoin_probes, context
        assert ours.tuples_generated == theirs.tuples_generated, context


@given(
    tree_seed=st.integers(0, 5_000),
    data_seed=st.integers(0, 5_000),
)
@settings(max_examples=10, deadline=None)
def test_async_clients_match_sync_session(tree_seed, data_seed):
    query = random_join_tree(max_nodes=5, seed=tree_seed)
    catalog = build_random_catalog(query, data_seed)
    for partitioning in ("off", 2):
        reference = _sync_reference(catalog, query, partitioning)
        reports = _async_reports(catalog, query, partitioning)
        _assert_equivalent(reports, reference,
                           (tree_seed, data_seed, partitioning))


def test_async_process_pool_matches_sync_session():
    # Fixed seeds (a process pool per hypothesis example would dominate
    # the suite's runtime); planning forced through the worker pool.
    for tree_seed, data_seed in ((11, 23), (47, 5), (301, 77)):
        query = random_join_tree(max_nodes=5, seed=tree_seed)
        catalog = build_random_catalog(query, data_seed)
        reference = _sync_reference(catalog, query, "off")
        reports = _async_reports(
            catalog, query, "off",
            planning_workers=1, process_min_relations=2,
        )
        _assert_equivalent(reports, reference, (tree_seed, data_seed))


def test_async_distinct_queries_interleaved():
    # Several *different* queries in flight at once: per-query plans and
    # results must each match their own synchronous reference.
    cases = []
    for tree_seed, data_seed in ((3, 9), (101, 8), (555, 60)):
        query = random_join_tree(max_nodes=5, seed=tree_seed)
        catalog = build_random_catalog(query, data_seed)
        cases.append((query, catalog,
                      _sync_reference(catalog, query, "off")))

    async def go():
        sessions = [QuerySession(catalog, partitioning="off")
                    for _, catalog, _ in cases]
        services = [AsyncQueryService(session) for session in sessions]
        try:
            batches = await asyncio.gather(*(
                service.execute_many([query] * 4, collect_output=True)
                for service, (query, _, _) in zip(services, cases)
            ))
        finally:
            for service in services:
                service.close()
        return batches

    batches = asyncio.run(go())
    for (query, _, reference), reports in zip(cases, batches):
        _assert_equivalent(reports, reference, query)
