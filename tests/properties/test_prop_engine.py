"""Property test: all six execution strategies compute the same join.

Random small join trees are instantiated with random data (including
dangling tuples and skewed keys) and every mode's flat output is
compared against a brute-force nested-loop evaluation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import execute
from repro.modes import ExecutionMode
from repro.storage import Catalog
from repro.workloads.random_trees import random_join_tree

from tests.helpers import brute_force_join, result_tuples


def build_random_catalog(query, seed, max_rows=14, domain=6):
    """Random tables matching the query's edge attributes."""
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    for relation in query.preorder():
        rows = int(rng.integers(1, max_rows + 1))
        columns = {"payload": np.arange(rows, dtype=np.int64)}
        if relation != query.root:
            edge = query.edge_to(relation)
            columns[edge.child_attr] = rng.integers(0, domain, rows)
        for child in query.children(relation):
            edge = query.edge_to(child)
            columns[edge.parent_attr] = rng.integers(0, domain, rows)
        catalog.add_table(relation, columns)
    return catalog


@given(
    tree_seed=st.integers(0, 5_000),
    data_seed=st.integers(0, 5_000),
    order_seed=st.integers(0, 5_000),
)
@settings(max_examples=25, deadline=None)
def test_all_modes_match_brute_force(tree_seed, data_seed, order_seed):
    query = random_join_tree(max_nodes=5, seed=tree_seed)
    catalog = build_random_catalog(query, data_seed)
    expected = brute_force_join(catalog, query)
    order = query.random_order(np.random.default_rng(order_seed))
    for mode in ExecutionMode.all_modes():
        result = execute(catalog, query, order, mode,
                         flat_output=True, collect_output=True)
        assert result_tuples(result, query) == expected, (mode, order)
        assert result.output_size == len(expected)


@given(
    tree_seed=st.integers(0, 5_000),
    data_seed=st.integers(0, 5_000),
)
@settings(max_examples=25, deadline=None)
def test_factorized_count_matches_flat_size(tree_seed, data_seed):
    query = random_join_tree(max_nodes=5, seed=tree_seed)
    catalog = build_random_catalog(query, data_seed)
    expected = brute_force_join(catalog, query)
    result = execute(catalog, query, mode=ExecutionMode.COM,
                     flat_output=False)
    assert result.output_size == len(expected)


@given(
    tree_seed=st.integers(0, 5_000),
    data_seed=st.integers(0, 5_000),
)
@settings(max_examples=20, deadline=None)
def test_com_probes_never_exceed_std(tree_seed, data_seed):
    query = random_join_tree(max_nodes=5, seed=tree_seed)
    catalog = build_random_catalog(query, data_seed)
    std = execute(catalog, query, mode=ExecutionMode.STD,
                  flat_output=False)
    com = execute(catalog, query, mode=ExecutionMode.COM,
                  flat_output=False)
    assert com.counters.hash_probes <= std.counters.hash_probes


@given(
    tree_seed=st.integers(0, 5_000),
    data_seed=st.integers(0, 5_000),
)
@settings(max_examples=20, deadline=None)
def test_semijoin_never_increases_hash_probes(tree_seed, data_seed):
    """Phase-1 reduction only removes tuples, so phase-2 COM probes
    cannot exceed plain COM probes for the same order."""
    query = random_join_tree(max_nodes=5, seed=tree_seed)
    catalog = build_random_catalog(query, data_seed)
    com = execute(catalog, query, mode=ExecutionMode.COM,
                  flat_output=False)
    sj = execute(catalog, query, mode=ExecutionMode.SJ_COM,
                 flat_output=False)
    assert sj.counters.hash_probes <= com.counters.hash_probes


@given(
    tree_seed=st.integers(0, 5_000),
    data_seed=st.integers(0, 5_000),
)
@settings(max_examples=15, deadline=None)
def test_measured_probes_match_eq1_exactly_on_clean_data(
    tree_seed, data_seed
):
    """On data with *measured* statistics, Eq. (1) is exact in
    expectation; here we check the executor's per-relation probes agree
    with the brute-force count of surviving parent entries."""
    query = random_join_tree(max_nodes=4, seed=tree_seed)
    catalog = build_random_catalog(query, data_seed)
    order = list(query.non_root_relations)
    result = execute(catalog, query, order, ExecutionMode.COM,
                     flat_output=False)
    # First probe: always the full driver.
    first = order[0]
    assert result.counters.hash_probes_by_relation[first] == len(
        catalog.table(query.root)
    )
