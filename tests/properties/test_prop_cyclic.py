"""Property test: cyclic execution matches brute force on random data."""

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    decompose,
    enumerate_spanning_trees,
    execute_cyclic,
    parse_query,
    spanning_tree_decomposition,
)
from repro.core.cyclic import ResidualPredicate, apply_residuals
from repro.core.parser import ParsedQuery
from repro.modes import ExecutionMode
from repro.planner import Planner
from repro.storage import Catalog
from repro.storage.partition import partitioned_catalog
from repro.workloads.cyclic import cyclic_catalog

TRIANGLE = (
    "select * from A, B, C "
    "where A.x = B.x and B.y = C.y and C.z = A.z"
)


def build_triangle_catalog(seed, max_rows=12, domain=4):
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    sizes = rng.integers(1, max_rows + 1, 3)
    catalog.add_table("A", {"x": rng.integers(0, domain, sizes[0]),
                            "z": rng.integers(0, domain, sizes[0])})
    catalog.add_table("B", {"x": rng.integers(0, domain, sizes[1]),
                            "y": rng.integers(0, domain, sizes[1])})
    catalog.add_table("C", {"y": rng.integers(0, domain, sizes[2]),
                            "z": rng.integers(0, domain, sizes[2])})
    return catalog


def brute_force(catalog):
    a, b, c = (catalog.table(n) for n in "ABC")
    out = []
    for i in range(len(a)):
        for j in range(len(b)):
            if a.column("x")[i] != b.column("x")[j]:
                continue
            for k in range(len(c)):
                if (b.column("y")[j] == c.column("y")[k]
                        and c.column("z")[k] == a.column("z")[i]):
                    out.append((i, j, k))
    return sorted(out)


@given(seed=st.integers(0, 5_000),
       mode=st.sampled_from(ExecutionMode.all_modes()),
       driver=st.sampled_from(["A", "B", "C"]))
@settings(max_examples=30, deadline=None)
def test_triangle_matches_brute_force(seed, mode, driver):
    catalog = build_triangle_catalog(seed)
    plan = spanning_tree_decomposition(parse_query(TRIANGLE), driver=driver)
    expected = brute_force(catalog)
    size, _, rows = execute_cyclic(catalog, plan, mode=mode,
                                   collect_output=True)
    assert size == len(expected)
    got = sorted(zip(rows["A"].tolist(), rows["B"].tolist(),
                     rows["C"].tolist()))
    assert got == expected


@given(seed=st.integers(0, 5_000))
@settings(max_examples=30, deadline=None)
def test_apply_residuals_is_a_pure_filter(seed):
    catalog = build_triangle_catalog(seed, max_rows=10)
    rng = np.random.default_rng(seed + 1)
    n = int(rng.integers(0, 20))
    rows = {
        "A": rng.integers(0, len(catalog.table("A")), n),
        "C": rng.integers(0, len(catalog.table("C")), n),
    }
    predicate = ResidualPredicate("C", "z", "A", "z")
    filtered = apply_residuals(catalog, [predicate], dict(rows))
    kept = len(filtered["A"])
    assert kept <= n
    # Every kept pair satisfies the predicate; every dropped one fails.
    a_vals = catalog.table("A").column("z")[rows["A"]]
    c_vals = catalog.table("C").column("z")[rows["C"]]
    assert kept == int((a_vals == c_vals).sum())
    if kept:
        fa = catalog.table("A").column("z")[filtered["A"]]
        fc = catalog.table("C").column("z")[filtered["C"]]
        assert (fa == fc).all()


# ----------------------------------------------------------------------
# Joint search invariants on random cyclic graphs
# ----------------------------------------------------------------------

#: candidate extra edges over the path R0-R1-R2-R3 (each closes a cycle)
_EXTRA_EDGES = [(0, 2), (0, 3), (1, 3)]


def random_cyclic_query(seed):
    """A 4-relation cyclic query: a path plus 1-3 extra edges."""
    rng = np.random.default_rng(seed)
    edges = [(0, 1), (1, 2), (2, 3)]
    extra = 1 + int(rng.integers(len(_EXTRA_EDGES)))
    chosen = rng.choice(len(_EXTRA_EDGES), size=extra, replace=False)
    edges.extend(_EXTRA_EDGES[i] for i in sorted(chosen))
    predicates = []
    for i, j in edges:
        attr = f"k_{i}_{j}"
        predicates.append((f"R{i}", attr, f"R{j}", attr))
    return ParsedQuery(
        relations={f"R{i}": f"R{i}" for i in range(4)},
        join_predicates=predicates,
    )


def brute_force_parsed(catalog, parsed):
    relations = list(parsed.relations)
    sizes = [range(len(catalog.table(rel))) for rel in relations]
    position = {rel: i for i, rel in enumerate(relations)}
    out = []
    for combo in itertools.product(*sizes):
        if all(
            catalog.table(rel_a).column(attr_a)[combo[position[rel_a]]]
            == catalog.table(rel_b).column(attr_b)[combo[position[rel_b]]]
            for rel_a, attr_a, rel_b, attr_b in parsed.join_predicates
        ):
            out.append(combo)
    return sorted(out)


@given(seed=st.integers(0, 2_000),
       mode=st.sampled_from(ExecutionMode.all_modes()))
@settings(max_examples=20, deadline=None)
def test_results_invariant_across_all_spanning_trees(seed, mode):
    """Every spanning tree of a cyclic query yields the same result."""
    parsed = random_cyclic_query(seed)
    catalog = cyclic_catalog(parsed, rows_per_relation=8, key_domain=3,
                             seed=seed + 1)
    expected = brute_force_parsed(catalog, parsed)
    predicates = list(parsed.join_predicates)
    relations = list(parsed.relations)
    trees = list(enumerate_spanning_trees(
        relations, predicates, [1.0] * len(predicates)
    ))
    assert trees
    for tree in trees:
        plan = decompose(parsed, [predicates[i] for i in tree])
        size, _, rows = execute_cyclic(catalog, plan, mode=mode,
                                       collect_output=True)
        got = sorted(zip(*(rows[rel].tolist() for rel in relations)))
        assert size == len(expected)
        assert got == expected


@given(seed=st.integers(0, 2_000),
       mode=st.sampled_from(ExecutionMode.all_modes()))
@settings(max_examples=20, deadline=None)
def test_cyclic_invariant_across_shard_counts(seed, mode):
    """Results *and* counters are layout-independent for a fixed tree."""
    parsed = random_cyclic_query(seed)
    catalog = cyclic_catalog(parsed, rows_per_relation=24, key_domain=5,
                             seed=seed + 1)
    plan = spanning_tree_decomposition(parsed)
    relations = list(parsed.relations)
    reference = None
    for shards in (1, 2, 8):
        layout = (
            catalog if shards == 1
            else partitioned_catalog(catalog, plan.query, shards)
        )
        size, result, rows = execute_cyclic(layout, plan, mode=mode,
                                            collect_output=True)
        snapshot = (
            size,
            sorted(zip(*(rows[rel].tolist() for rel in relations))),
            result.counters.hash_probes,
            result.counters.tuples_generated,
            result.counters.residual_checks,
            result.counters.residual_input_tuples,
        )
        if reference is None:
            reference = snapshot
        else:
            assert snapshot == reference


@given(seed=st.integers(0, 2_000))
@settings(max_examples=15, deadline=None)
def test_planner_joint_tree_never_costlier_than_greedy(seed):
    parsed = random_cyclic_query(seed)
    catalog = cyclic_catalog(parsed, rows_per_relation=16,
                             key_domain=(2, 12), seed=seed + 1)
    planner = Planner(catalog, stats_cache=True)
    joint = planner.plan(parsed, mode="auto", optimizer="auto")
    greedy = planner.plan(parsed, mode="auto", optimizer="auto",
                          tree_search="greedy")
    assert joint.predicted_cost <= greedy.predicted_cost * (1 + 1e-9)
    expected = brute_force_parsed(catalog, parsed)
    relations = list(parsed.relations)
    for plan in (joint, greedy):
        result = plan.execute(collect_output=True)
        got = sorted(zip(
            *(result.output_rows[rel].tolist() for rel in relations)
        ))
        assert got == expected
