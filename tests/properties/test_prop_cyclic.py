"""Property test: cyclic execution matches brute force on random data."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import execute_cyclic, parse_query, spanning_tree_decomposition
from repro.core.cyclic import ResidualPredicate, apply_residuals
from repro.modes import ExecutionMode
from repro.storage import Catalog

TRIANGLE = (
    "select * from A, B, C "
    "where A.x = B.x and B.y = C.y and C.z = A.z"
)


def build_triangle_catalog(seed, max_rows=12, domain=4):
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    sizes = rng.integers(1, max_rows + 1, 3)
    catalog.add_table("A", {"x": rng.integers(0, domain, sizes[0]),
                            "z": rng.integers(0, domain, sizes[0])})
    catalog.add_table("B", {"x": rng.integers(0, domain, sizes[1]),
                            "y": rng.integers(0, domain, sizes[1])})
    catalog.add_table("C", {"y": rng.integers(0, domain, sizes[2]),
                            "z": rng.integers(0, domain, sizes[2])})
    return catalog


def brute_force(catalog):
    a, b, c = (catalog.table(n) for n in "ABC")
    out = []
    for i in range(len(a)):
        for j in range(len(b)):
            if a.column("x")[i] != b.column("x")[j]:
                continue
            for k in range(len(c)):
                if (b.column("y")[j] == c.column("y")[k]
                        and c.column("z")[k] == a.column("z")[i]):
                    out.append((i, j, k))
    return sorted(out)


@given(seed=st.integers(0, 5_000),
       mode=st.sampled_from(ExecutionMode.all_modes()),
       driver=st.sampled_from(["A", "B", "C"]))
@settings(max_examples=30, deadline=None)
def test_triangle_matches_brute_force(seed, mode, driver):
    catalog = build_triangle_catalog(seed)
    plan = spanning_tree_decomposition(parse_query(TRIANGLE), driver=driver)
    expected = brute_force(catalog)
    size, _, rows = execute_cyclic(catalog, plan, mode=mode,
                                   collect_output=True)
    assert size == len(expected)
    got = sorted(zip(rows["A"].tolist(), rows["B"].tolist(),
                     rows["C"].tolist()))
    assert got == expected


@given(seed=st.integers(0, 5_000))
@settings(max_examples=30, deadline=None)
def test_apply_residuals_is_a_pure_filter(seed):
    catalog = build_triangle_catalog(seed, max_rows=10)
    rng = np.random.default_rng(seed + 1)
    n = int(rng.integers(0, 20))
    rows = {
        "A": rng.integers(0, len(catalog.table("A")), n),
        "C": rng.integers(0, len(catalog.table("C")), n),
    }
    predicate = ResidualPredicate("C", "z", "A", "z")
    filtered = apply_residuals(catalog, [predicate], dict(rows))
    kept = len(filtered["A"])
    assert kept <= n
    # Every kept pair satisfies the predicate; every dropped one fails.
    a_vals = catalog.table("A").column("z")[rows["A"]]
    c_vals = catalog.table("C").column("z")[rows["C"]]
    assert kept == int((a_vals == c_vals).sum())
    if kept:
        fa = catalog.table("A").column("z")[filtered["A"]]
        fc = catalog.table("C").column("z")[filtered["C"]]
        assert (fa == fc).all()
