"""Property tests: the hash index agrees with a dict-based reference."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import HashIndex, concat_ranges

keys_strategy = st.lists(st.integers(-50, 50), max_size=120)
probes_strategy = st.lists(st.integers(-60, 60), max_size=60)


@given(keys=keys_strategy, probes=probes_strategy)
@settings(max_examples=80, deadline=None)
def test_lookup_matches_reference(keys, probes):
    index = HashIndex(np.asarray(keys, dtype=np.int64))
    reference = {}
    for i, key in enumerate(keys):
        reference.setdefault(key, []).append(i)
    result = index.lookup(np.asarray(probes, dtype=np.int64))
    assert result.counts.tolist() == [
        len(reference.get(p, [])) for p in probes
    ]
    rows = result.matching_rows()
    offset = 0
    for probe in probes:
        expected = reference.get(probe, [])
        got = rows[offset:offset + len(expected)].tolist()
        assert sorted(got) == sorted(expected)
        offset += len(expected)
    assert offset == len(rows)


@given(keys=keys_strategy, probes=probes_strategy)
@settings(max_examples=60, deadline=None)
def test_contains_matches_membership(keys, probes):
    index = HashIndex(np.asarray(keys, dtype=np.int64))
    key_set = set(keys)
    mask = index.contains(np.asarray(probes, dtype=np.int64))
    assert mask.tolist() == [p in key_set for p in probes]


@given(
    data=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 5)), max_size=40
    )
)
@settings(max_examples=60, deadline=None)
def test_concat_ranges_matches_python(data):
    starts = [s for s, _ in data]
    lengths = [length for _, length in data]
    expected = [
        value
        for start, length in data
        for value in range(start, start + length)
    ]
    got = concat_ranges(starts, lengths)
    assert got.tolist() == expected


@given(keys=keys_strategy, subset_seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_restricted_index_is_a_filter(keys, subset_seed):
    keys_arr = np.asarray(keys, dtype=np.int64)
    rng = np.random.default_rng(subset_seed)
    mask = rng.random(len(keys_arr)) < 0.5
    rows = np.nonzero(mask)[0]
    index = HashIndex(keys_arr, rows=rows)
    probes = np.unique(keys_arr) if len(keys_arr) else np.empty(0, np.int64)
    result = index.lookup(probes)
    matched = result.matching_rows()
    assert set(matched.tolist()) <= set(rows.tolist())
    total = sum(
        int((keys_arr[rows] == p).sum()) for p in probes.tolist()
    )
    assert result.total_matches() == total
