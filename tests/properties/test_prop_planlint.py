"""Property: every plan the planner produces verifies clean.

Sweeps acyclic and cyclic queries x shard counts {1, 2, 8} x all six
execution modes (plus ``mode="auto"``) and asserts ``validate="full"``
finds no error on any planner-produced plan — the verifier must reject
corruptions, never legitimate output.  Randomized catalogs come from
hypothesis; the mode/shard grid is exhaustive.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionMode, Planner, Table
from repro.analysis import verify_plan, verify_spec
from repro.core.parser import parse_query
from repro.storage import Catalog

ACYCLIC_SQL = (
    "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b AND r.x = 2"
)
CYCLIC_SQL = (
    "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b AND t.c = r.x"
)

SHARD_GRID = ("off", 2, 8)
MODE_GRID = ["auto"] + [str(mode) for mode in ExecutionMode.all_modes()]


def build_catalog(seed, rows):
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    catalog.add(Table("r", {
        "a": rng.integers(0, 30, rows),
        "x": rng.integers(0, 4, rows),
    }))
    catalog.add(Table("s", {
        "a": rng.integers(0, 30, 2 * rows),
        "b": rng.integers(0, 20, 2 * rows),
    }))
    catalog.add(Table("t", {
        "b": rng.integers(0, 20, rows),
        "c": rng.integers(0, 4, rows),
    }))
    return catalog


@pytest.mark.parametrize("partitioning", SHARD_GRID)
@pytest.mark.parametrize("sql", [ACYCLIC_SQL, CYCLIC_SQL],
                         ids=["acyclic", "cyclic"])
def test_planner_output_verifies_clean_across_modes(sql, partitioning):
    catalog = build_catalog(seed=11, rows=600)
    planner = Planner(catalog, partitioning=partitioning)
    for mode in MODE_GRID:
        plan = planner.plan(sql, mode=mode)
        result = verify_plan(plan, source=sql, level="full")
        assert result.ok, (
            f"mode={mode} shards={partitioning}: "
            f"{[str(d) for d in result.errors]}"
        )
        spec = plan.to_spec(catalog.fingerprint())
        spec_result = verify_spec(
            spec, query=parse_query(sql), catalog=catalog
        )
        assert spec_result.ok, (
            f"spec mode={mode} shards={partitioning}: "
            f"{[str(d) for d in spec_result.errors]}"
        )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    rows=st.integers(min_value=8, max_value=800),
    partitioning=st.sampled_from(SHARD_GRID),
    cyclic=st.booleans(),
    driver=st.sampled_from(["fixed", "auto"]),
)
def test_random_catalogs_verify_clean(seed, rows, partitioning, cyclic,
                                      driver):
    catalog = build_catalog(seed=seed, rows=rows)
    planner = Planner(catalog, partitioning=partitioning)
    sql = CYCLIC_SQL if cyclic else ACYCLIC_SQL
    plan = planner.plan(sql, driver=driver)
    result = verify_plan(plan, source=sql, level="full")
    assert result.ok, [str(d) for d in result.errors]


def test_validated_planner_matches_unvalidated_grid():
    """``validate="full"`` never changes the produced plan."""
    catalog = build_catalog(seed=3, rows=300)
    for partitioning in SHARD_GRID:
        baseline = Planner(catalog, partitioning=partitioning)
        validated = Planner(catalog, partitioning=partitioning,
                            validate="full")
        for sql in (ACYCLIC_SQL, CYCLIC_SQL):
            for mode in MODE_GRID:
                a = baseline.plan(sql, mode=mode)
                b = validated.plan(sql, mode=mode)
                assert a.fingerprint() == b.fingerprint()
