"""Property: distributed execution is bit-identical to local execution.

Across shard counts x worker counts x kernel paths, for acyclic and
cyclic queries and for edge-case key dtypes (NaN, bool, >=2**53 ints),
a ``placement="distributed"`` run must return the same rows in the same
order and *bit-identical*
:class:`~repro.engine.executor.ExecutionCounters` as the single-process
run — counters are the calibrated currency of the cost model, so the
scatter/gather merge must reconstruct them exactly, never approximately.

Deterministic parametrization (not hypothesis): each cell spawns worker
processes, so the grid is kept explicit and small.
"""

import dataclasses

import numpy as np
import pytest

from repro.service.session import QuerySession
from repro.workloads.random_trees import random_join_tree

from tests.helpers import make_small_catalog

from .test_prop_cyclic import TRIANGLE, build_triangle_catalog
from .test_prop_engine import build_random_catalog
from .test_prop_execution import _edge_case_catalog

SHARD_COUNTS = (1, 2, 8)
WORKER_COUNTS = (1, 2, 4)
EXECUTIONS = ("vectorized", "interpreted")

FOUR_RELATION_SQL = (
    "SELECT * FROM R1, R2, R3, R5 "
    "WHERE R1.B = R2.B AND R2.C = R3.C AND R1.E = R5.E"
)

COUNTER_FIELDS = [
    f.name for f in dataclasses.fields(
        __import__("repro.engine.executor", fromlist=["ExecutionCounters"])
        .ExecutionCounters
    )
]


def assert_bit_identical(local_report, dist_report, context=None):
    assert local_report.ok, (local_report.error, context)
    assert dist_report.ok, (dist_report.error, context)
    local, dist = local_report.result, dist_report.result
    assert dist.output_size == local.output_size, context
    assert set(dist.output_rows) == set(local.output_rows), context
    for relation, rows in local.output_rows.items():
        assert np.array_equal(rows, dist.output_rows[relation]), \
            (relation, context)
    for name in COUNTER_FIELDS:
        assert getattr(dist.counters, name) == \
            getattr(local.counters, name), (name, context)


def run_grid(catalog, query, *, session_kwargs=None, plan_kwargs=None):
    """Compare local vs distributed over the full knob grid."""
    session_kwargs = dict(session_kwargs or {})
    plan_kwargs = dict(plan_kwargs or {})
    for shards in SHARD_COUNTS:
        shard_kwargs = dict(session_kwargs)
        if shards > 1:
            shard_kwargs["partitioning"] = shards
        local = QuerySession(catalog, **shard_kwargs)
        for workers in WORKER_COUNTS:
            dist = QuerySession(
                catalog, placement="distributed", num_workers=workers,
                **shard_kwargs,
            )
            try:
                for execution in EXECUTIONS:
                    context = (shards, workers, execution)
                    want = local.execute(
                        query, collect_output=True,
                        execution=execution, **plan_kwargs,
                    )
                    got = dist.execute(
                        query, collect_output=True,
                        execution=execution, **plan_kwargs,
                    )
                    assert_bit_identical(want, got, context)
                    assert got.workers_used >= 1, context
            finally:
                dist.close()


def test_running_example_grid():
    run_grid(make_small_catalog(), FOUR_RELATION_SQL)


def test_running_example_grid_semijoin_mode():
    run_grid(
        make_small_catalog(), FOUR_RELATION_SQL,
        plan_kwargs={"mode": "SJ+COM"},
    )


def test_cyclic_triangle_grid():
    run_grid(
        build_triangle_catalog(seed=7), TRIANGLE,
        session_kwargs={"cyclic_execution": "tree_filter"},
    )


@pytest.mark.parametrize("tree_seed,data_seed", [(11, 3), (29, 17)])
def test_random_tree_queries(tree_seed, data_seed):
    query = random_join_tree(max_nodes=5, seed=tree_seed)
    catalog = build_random_catalog(query, data_seed)
    local = QuerySession(catalog)
    dist = QuerySession(catalog, placement="distributed", num_workers=2)
    try:
        want = local.execute(query, collect_output=True)
        got = dist.execute(query, collect_output=True)
        assert_bit_identical(want, got, (tree_seed, data_seed))
    finally:
        dist.close()


@pytest.mark.parametrize("tree_seed,data_seed", [(5, 23), (41, 8)])
def test_edge_case_dtypes(tree_seed, data_seed):
    """NaN holes, bools and >=2**53 keys survive the scatter/gather."""
    query = random_join_tree(max_nodes=4, seed=tree_seed)
    catalog = _edge_case_catalog(query, data_seed)
    local = QuerySession(catalog)
    dist = QuerySession(catalog, placement="distributed", num_workers=2)
    try:
        want = local.execute(query, collect_output=True)
        got = dist.execute(query, collect_output=True)
        assert_bit_identical(want, got, (tree_seed, data_seed))
    finally:
        dist.close()


def test_empty_driver_counters_still_match():
    """A driver with zero rows still merges counters bit-identically."""
    from repro.storage import Catalog

    catalog = Catalog()
    catalog.add_table("A", {"k": np.empty(0, dtype=np.int64)})
    catalog.add_table("B", {"k": np.arange(5, dtype=np.int64)})
    sql = "SELECT * FROM A, B WHERE A.k = B.k"
    local = QuerySession(catalog)
    dist = QuerySession(catalog, placement="distributed", num_workers=2)
    try:
        want = local.execute(sql, collect_output=True, mode="SJ+STD")
        got = dist.execute(sql, collect_output=True, mode="SJ+STD")
        assert_bit_identical(want, got, "empty-driver")
    finally:
        dist.close()
