"""Property tests: the wcoj strategy is a bit-exact peer of tree+filter.

The worst-case-optimal operator and the tree+filter pipelines are two
evaluations of the same predicate multiset, so their *results* must be
identical on every input — across shard counts, kernel paths, and the
cyclic shape generators.  Within each strategy, counters must be
bit-identical across shards and kernels (the cost model is calibrated
on them); across strategies the counters legitimately differ — the two
algorithms do different work — and what is pinned instead is the
bookkeeping that proves no predicate is ever applied twice:
``residual_input_tuples`` stays zero under wcoj (residuals are joined
inside elimination, never re-filtered on the output) and the planlint
predicate-accounting pass stays clean for both strategies.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.planlint import verify_plan
from repro.core import parse_query, spanning_tree_decomposition
from repro.core.cyclic import (
    execute_cyclic,
    tree_query_from_residuals,
)
from repro.engine.wcoj import execute_wcoj
from repro.modes import ExecutionMode
from repro.planner import Planner
from repro.storage import Catalog
from repro.storage.partition import partitioned_catalog
from repro.workloads.cyclic import CYCLIC_SHAPES, cyclic_catalog, to_sql

from .test_prop_cyclic import TRIANGLE, brute_force, build_triangle_catalog
from .test_prop_execution import SHARD_COUNTS, assert_counters_identical

STRATEGIES = ("tree_filter", "wcoj")
KERNELS = ("vectorized", "interpreted")

# the smallest instance of each shape with at least one residual
SHAPE_SIZES = (("cycle", 4), ("clique", 4), ("grid", 4))


def _row_tuples(rows, relations):
    return sorted(zip(*(rows[rel].tolist() for rel in relations)))


def _strategy_outputs(catalog, plan, mode, execution="vectorized"):
    """``(size, result, sorted row tuples)`` per strategy, same plan."""
    relations = sorted(plan.query.relations)
    out = {}
    size, result, rows = execute_cyclic(
        catalog, plan, mode=mode, collect_output=True, execution=execution
    )
    out["tree_filter"] = (size, result, _row_tuples(rows, relations))
    size, result, rows = execute_wcoj(
        catalog, plan, mode=mode, collect_output=True, execution=execution
    )
    out["wcoj"] = (size, result, _row_tuples(rows, relations))
    return out


@given(
    seed=st.integers(0, 5_000),
    mode=st.sampled_from([ExecutionMode.COM, ExecutionMode.STD]),
)
@settings(max_examples=25, deadline=None)
def test_wcoj_matches_brute_force_and_tree_filter(seed, mode):
    catalog = build_triangle_catalog(seed)
    plan = spanning_tree_decomposition(parse_query(TRIANGLE), driver="A")
    expected = brute_force(catalog)
    outputs = _strategy_outputs(catalog, plan, mode)
    for strategy in STRATEGIES:
        size, _, tuples = outputs[strategy]
        assert size == len(expected), strategy
        assert tuples == expected, strategy


@given(
    case=st.sampled_from(SHAPE_SIZES),
    data_seed=st.integers(0, 2_000),
)
@settings(max_examples=15, deadline=None)
def test_strategies_agree_across_shapes(case, data_seed):
    shape, n = case
    parsed = CYCLIC_SHAPES[shape](n)
    catalog = cyclic_catalog(parsed, rows_per_relation=20,
                             key_domain=(2, 5), seed=data_seed)
    plan = spanning_tree_decomposition(parsed, driver="R0")
    outputs = _strategy_outputs(catalog, plan, ExecutionMode.COM)
    assert outputs["wcoj"][2] == outputs["tree_filter"][2], (shape, n)
    # no residual is ever re-filtered after elimination under wcoj
    assert outputs["wcoj"][1].counters.residual_input_tuples == 0
    assert outputs["tree_filter"][1].counters.residual_input_tuples > 0


@given(seed=st.integers(0, 2_000))
@settings(max_examples=8, deadline=None)
def test_counters_identical_across_shards_and_kernels(seed):
    """Within each strategy: shard count and kernel path are invisible.

    Results *and every counter field* must agree bit for bit across
    shard counts {1, 2, 8} and both kernel paths — the wcoj chain
    indexes are built in base-row order precisely so the physical
    layout cannot leak into the counters.
    """
    catalog = build_triangle_catalog(seed, max_rows=10)
    parsed = parse_query(TRIANGLE)
    plan = spanning_tree_decomposition(parsed, driver="A")
    for strategy in STRATEGIES:
        baseline = None
        for num_shards in SHARD_COUNTS:
            sharded = catalog if num_shards == 1 else \
                partitioned_catalog(catalog, plan.query, num_shards)
            for execution in KERNELS:
                outputs = _strategy_outputs(
                    sharded, plan, ExecutionMode.COM, execution=execution
                )
                size, result, tuples = outputs[strategy]
                context = (strategy, num_shards, execution)
                if baseline is None:
                    baseline = (size, result.counters, tuples)
                    continue
                assert size == baseline[0], context
                assert tuples == baseline[2], context
                assert_counters_identical(baseline[1], result.counters,
                                          context)


# ----------------------------------------------------------------------
# Exact-key edge cases on the residual attribute
# ----------------------------------------------------------------------
# The residual of the A-rooted triangle tree is C.z = A.z; each side's
# column is pushed through an independent cast so int/float 2**53
# collisions, NaN holes, and bool/int mixes all land on the residual
# (and, by rerooting, on tree edges — the directional probe path).

_CASTS = {
    "small_int": lambda a: a.astype(np.int64),
    "big_int": lambda a: a.astype(np.int64) + 2**53,
    "big_int_odd": lambda a: a.astype(np.int64) + 2**53 + (a % 2),
    "big_float": lambda a: a.astype(np.float64) + 2**53,
    "nan_float": lambda a: np.where(a == 0, np.nan, a.astype(np.float64)),
    "bool": lambda a: a.astype(bool),
}


@given(
    seed=st.integers(0, 2_000),
    cast_a=st.sampled_from(sorted(_CASTS)),
    cast_c=st.sampled_from(sorted(_CASTS)),
    driver=st.sampled_from(["A", "B", "C"]),
)
@settings(max_examples=40, deadline=None)
def test_exact_key_edge_cases_agree(seed, cast_a, cast_c, driver):
    rng = np.random.default_rng(seed)
    sizes = rng.integers(1, 10, 3)
    raw_a = rng.integers(0, 3, sizes[0])
    raw_c = rng.integers(0, 3, sizes[2])
    catalog = Catalog()
    catalog.add_table("A", {"x": rng.integers(0, 3, sizes[0]),
                            "z": _CASTS[cast_a](raw_a)})
    catalog.add_table("B", {"x": rng.integers(0, 3, sizes[1]),
                            "y": rng.integers(0, 3, sizes[1])})
    catalog.add_table("C", {"y": rng.integers(0, 3, sizes[2]),
                            "z": _CASTS[cast_c](raw_c)})
    plan = spanning_tree_decomposition(parse_query(TRIANGLE),
                                       driver=driver)
    for execution in KERNELS:
        outputs = _strategy_outputs(catalog, plan, ExecutionMode.COM,
                                    execution=execution)
        context = (cast_a, cast_c, driver, execution)
        assert outputs["wcoj"][2] == outputs["tree_filter"][2], context


# ----------------------------------------------------------------------
# Planner-level: strategy arbitration, lint, and the round-trip law
# ----------------------------------------------------------------------


@given(
    case=st.sampled_from(SHAPE_SIZES),
    data_seed=st.integers(0, 1_000),
)
@settings(max_examples=10, deadline=None)
def test_planner_strategies_agree_and_lint_clean(case, data_seed):
    """End-to-end: both forced strategies return identical results,
    both plans pass the full verifier (predicate accounting proves no
    predicate is dropped or double-applied), and ``"auto"`` resolves to
    the cheaper of the two predicted costs."""
    shape, n = case
    parsed = CYCLIC_SHAPES[shape](n)
    catalog = cyclic_catalog(parsed, rows_per_relation=16,
                             key_domain=(2, 5), seed=data_seed)
    sql = to_sql(parsed)
    relations = sorted(parsed.relations)
    plans, tuples = {}, {}
    for strategy in STRATEGIES:
        plan = Planner(catalog, cyclic_execution=strategy).plan(
            sql, stats="exact"
        )
        assert plan.cyclic_strategy == strategy
        report = verify_plan(plan, source=sql, level="full")
        assert not report.diagnostics, (strategy, report.diagnostics)
        result = plan.execute(collect_output=True)
        plans[strategy] = plan
        tuples[strategy] = _row_tuples(result.output_rows, relations)
    assert tuples["wcoj"] == tuples["tree_filter"]
    auto = Planner(catalog, cyclic_execution="auto").plan(
        sql, stats="exact"
    )
    cheaper = min(STRATEGIES,
                  key=lambda s: plans[s].predicted_cost)
    assert auto.cyclic_strategy == cheaper
    assert auto.predicted_cost == plans[cheaper].predicted_cost


@given(
    case=st.sampled_from(SHAPE_SIZES),
    data_seed=st.integers(0, 1_000),
)
@settings(max_examples=10, deadline=None)
def test_residual_round_trip_never_double_applies(case, data_seed):
    """The decompose / tree_query_from_residuals round-trip law.

    A plan's tree edges and residuals partition the parsed predicate
    multiset, so rebuilding the tree from the residuals reproduces the
    plan's query exactly — same root, same edge multiset — and the
    edge-XOR-residual invariant holds under both strategies (a wcoj
    plan keeps the same split; it only *evaluates* the two halves in
    one pass instead of two).
    """
    shape, n = case
    parsed = CYCLIC_SHAPES[shape](n)
    catalog = cyclic_catalog(parsed, rows_per_relation=12,
                             key_domain=(2, 4), seed=data_seed)
    sql = to_sql(parsed)
    for strategy in STRATEGIES:
        plan = Planner(catalog, cyclic_execution=strategy).plan(
            sql, stats="exact"
        )
        rebuilt = tree_query_from_residuals(
            parsed, plan.residuals, plan.query.root
        )
        assert rebuilt.root == plan.query.root, strategy

        def edge_key(edge):
            return (edge.parent, edge.parent_attr, edge.child,
                    edge.child_attr)

        assert sorted(map(edge_key, rebuilt.edges)) == \
            sorted(map(edge_key, plan.query.edges)), strategy
        # edge XOR residual: tree edges + residuals == parsed multiset
        def undirected(rel_a, attr_a, rel_b, attr_b):
            return min((rel_a, attr_a, rel_b, attr_b),
                       (rel_b, attr_b, rel_a, attr_a))
        covered = sorted(
            [undirected(e.parent, e.parent_attr, e.child, e.child_attr)
             for e in plan.query.edges]
            + [undirected(r.relation_a, r.attr_a, r.relation_b, r.attr_b)
               for r in plan.residuals]
        )
        want = sorted(undirected(*p) for p in parsed.join_predicates)
        assert covered == want, strategy
