"""Property test: partitioned execution is indistinguishable from
monolithic execution.

For random acyclic queries over random data, executing against a
hash-partitioned catalog (``num_shards`` in {1, 2, 8}) must produce the
same result set *and* the same reported probe counts as the
unpartitioned executor — partitioning is a physical layout, never a
semantic or cost-metric change.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import execute
from repro.modes import ExecutionMode
from repro.storage import partitioned_catalog
from repro.workloads.random_trees import random_join_tree

from tests.helpers import result_tuples

from .test_prop_engine import build_random_catalog

SHARD_COUNTS = (1, 2, 8)
MODES = (ExecutionMode.COM, ExecutionMode.STD, ExecutionMode.SJ_COM,
         ExecutionMode.BVP_COM)


@given(
    tree_seed=st.integers(0, 5_000),
    data_seed=st.integers(0, 5_000),
    order_seed=st.integers(0, 5_000),
)
@settings(max_examples=20, deadline=None)
def test_sharded_results_and_probes_match_unpartitioned(
    tree_seed, data_seed, order_seed
):
    query = random_join_tree(max_nodes=5, seed=tree_seed)
    catalog = build_random_catalog(query, data_seed)
    order = query.random_order(np.random.default_rng(order_seed))
    for mode in MODES:
        baseline = execute(catalog, query, order, mode,
                           flat_output=True, collect_output=True)
        expected = result_tuples(baseline, query)
        for num_shards in SHARD_COUNTS:
            sharded_catalog = partitioned_catalog(catalog, query, num_shards)
            result = execute(sharded_catalog, query, order, mode,
                             flat_output=True, collect_output=True)
            context = (mode, num_shards, order)
            assert result_tuples(result, query) == expected, context
            assert result.output_size == baseline.output_size, context
            # the paper's abstract cost metrics are layout-independent
            base = baseline.counters
            got = result.counters
            assert got.hash_probes == base.hash_probes, context
            assert got.hash_probes_by_relation == \
                base.hash_probes_by_relation, context
            assert got.bitvector_probes == base.bitvector_probes, context
            assert got.semijoin_probes == base.semijoin_probes, context
            assert got.tuples_generated == base.tuples_generated, context


@given(
    tree_seed=st.integers(0, 5_000),
    data_seed=st.integers(0, 5_000),
)
@settings(max_examples=10, deadline=None)
def test_sharded_execution_reports_its_fanout(tree_seed, data_seed):
    query = random_join_tree(max_nodes=5, seed=tree_seed)
    catalog = build_random_catalog(query, data_seed)
    sharded_catalog = partitioned_catalog(catalog, query, 2)
    result = execute(sharded_catalog, query, mode=ExecutionMode.COM,
                     flat_output=False)
    assert result.shards_used == 2
    assert result.index_build_seconds >= 0.0
    unpartitioned = execute(catalog, query, mode=ExecutionMode.COM,
                            flat_output=False)
    assert unpartitioned.shards_used == 1
