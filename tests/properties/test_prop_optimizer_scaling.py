"""Property tests for the scaling optimizers (IDP + beam).

Invariants (ISSUE 2):

* every produced order is a valid connected prefix sequence;
* IDP is bit-identical to the exhaustive DP when ``block_size >= n``;
* for small queries (n <= 12) both stay within a recorded cost ratio
  of the exhaustive optimum (and never beat it — it is the optimum).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import beam_order, exhaustive_optimal, idp_order
from repro.core.optimizer import incremental_order_cost
from repro.workloads.large_joins import (
    chain_query,
    large_query_stats,
    random_tree_query,
    star_query,
)
from repro.workloads.random_trees import random_join_tree, random_stats

#: loose quality envelope for the default knobs on n <= 12 queries; the
#: measured ratios (benchmarks/results/BENCH_optimizer_scaling.json)
#: are far tighter (mean ~1.0, worst ~2.0 over thousands of seeded
#: cases), this guards against regressions to arbitrarily bad
#: stitching.
MAX_SMALL_QUERY_RATIO = 4.0


@st.composite
def scaling_case(draw, min_nodes=4, max_nodes=12):
    shape = draw(st.sampled_from(["chain", "star", "random_tree", "fig10"]))
    n = draw(st.integers(min_nodes, max_nodes))
    seed = draw(st.integers(0, 10_000))
    if shape == "chain":
        query = chain_query(n)
    elif shape == "star":
        query = star_query(n)
    elif shape == "random_tree":
        query = random_tree_query(n, seed=seed)
    else:
        query = random_join_tree(max_nodes=n, seed=seed)
        return query, random_stats(query, (0.05, 0.5), seed=seed)
    return query, large_query_stats(query, seed=seed)


@given(case=scaling_case(), block_size=st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_idp_orders_are_valid_connected_prefixes(case, block_size):
    query, stats = case
    plan = idp_order(query, stats, block_size=block_size)
    assert query.is_valid_order(plan.order)
    # every prefix of a valid order is connected by construction; check
    # explicitly that each step extends the joined frontier
    joined = {query.root}
    for relation in plan.order:
        assert query.parent(relation) in joined
        joined.add(relation)


@given(case=scaling_case(), beam_width=st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_beam_orders_are_valid_connected_prefixes(case, beam_width):
    query, stats = case
    plan = beam_order(query, stats, beam_width=beam_width)
    assert query.is_valid_order(plan.order)
    joined = {query.root}
    for relation in plan.order:
        assert query.parent(relation) in joined
        joined.add(relation)


@given(case=scaling_case(max_nodes=9))
@settings(max_examples=30, deadline=None)
def test_idp_bit_identical_when_block_covers_query(case):
    query, stats = case
    exact = exhaustive_optimal(query, stats)
    for block_size in (query.num_relations, query.num_relations + 5):
        plan = idp_order(query, stats, block_size=block_size)
        assert plan.order == exact.order
        assert plan.cost == exact.cost


@given(case=scaling_case())
@settings(max_examples=30, deadline=None)
def test_scaling_optimizers_within_recorded_ratio_of_exhaustive(case):
    query, stats = case
    exact = exhaustive_optimal(query, stats)
    idp = idp_order(query, stats, block_size=8)
    beam = beam_order(query, stats, beam_width=8)
    for plan in (idp, beam):
        # never better than the optimum...
        assert plan.cost >= exact.cost - 1e-9 * max(1.0, exact.cost)
        # ...and never catastrophically worse on small queries
        assert plan.cost <= MAX_SMALL_QUERY_RATIO * exact.cost + 1e-9


@given(case=scaling_case(max_nodes=10))
@settings(max_examples=20, deadline=None)
def test_reported_costs_match_incremental_recosting(case):
    """The cost field of every scaling plan is the sum of its own
    order's delta costs (one comparable objective across algorithms)."""
    query, stats = case
    for plan in (
        idp_order(query, stats, block_size=3),
        beam_order(query, stats, beam_width=3),
        exhaustive_optimal(query, stats),
    ):
        recosted = incremental_order_cost(query, stats, plan.order)
        assert abs(recosted - plan.cost) <= 1e-9 * max(1.0, plan.cost)
