"""Property test: SQL round trip for random join trees.

Any rooted join tree can be rendered as the paper's SQL dialect; parsing
it back and re-rooting at the original driver must reproduce the tree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import parse_query
from repro.workloads.random_trees import random_join_tree


def to_sql(query):
    relations = ", ".join(query.relations)
    conjuncts = [
        f"{e.parent}.{e.parent_attr} = {e.child}.{e.child_attr}"
        for e in query.edges
    ]
    sql = f"select * from {relations}"
    if conjuncts:
        sql += " where " + " and ".join(conjuncts)
    return sql


@given(seed=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_sql_round_trip(seed):
    query = random_join_tree(max_nodes=10, seed=seed)
    parsed = parse_query(to_sql(query))
    assert parsed.is_acyclic()
    assert parsed.is_connected()
    rebuilt = parsed.to_join_query(driver=query.root)
    assert rebuilt.root == query.root
    assert set(rebuilt.relations) == set(query.relations)
    original_edges = {
        (e.parent, e.parent_attr, e.child, e.child_attr)
        for e in query.edges
    }
    rebuilt_edges = {
        (e.parent, e.parent_attr, e.child, e.child_attr)
        for e in rebuilt.edges
    }
    assert original_edges == rebuilt_edges


@given(seed=st.integers(0, 10_000), driver_index=st.integers(0, 20))
@settings(max_examples=40, deadline=None)
def test_any_driver_choice_is_consistent(seed, driver_index):
    query = random_join_tree(max_nodes=8, seed=seed)
    parsed = parse_query(to_sql(query))
    driver = query.relations[driver_index % query.num_relations]
    rebuilt = parsed.to_join_query(driver=driver)
    assert rebuilt.root == driver
    assert rebuilt.num_relations == query.num_relations
    # Valid orders exist from any rooting.
    order = rebuilt.random_order(0)
    assert rebuilt.is_valid_order(order)
