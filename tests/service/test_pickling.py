"""Pickling round-trips for the process-pool planning path.

Workers receive a pickled catalog (+ planner config) once and return
:class:`~repro.planner.PlanSpec` objects; these tests pin the
content-addressing contract: fingerprints survive the trip, caches
reset instead of shipping state, and a rehydrated spec is the same
plan the local planner would have produced.
"""

import pickle

import numpy as np
import pytest

from repro.core.lru import LRUCache
from repro.planner import Planner, PlanSpec
from repro.storage import Catalog, PartitionedTable
from repro.workloads.large_joins import (
    large_join_catalog,
    random_tree_query,
)
from tests.helpers import make_small_catalog

SIX_RELATION_SQL = (
    "select * from R1, R2, R3, R4, R5, R6 "
    "where R1.B = R2.B and R2.C = R3.C and R2.D = R4.D "
    "and R1.E = R5.E and R5.F = R6.F"
)


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestCatalogPickling:
    def test_fingerprint_survives(self):
        catalog = make_small_catalog()
        clone = roundtrip(catalog)
        assert clone.fingerprint() == catalog.fingerprint()
        assert clone.table_names == catalog.table_names

    def test_cached_indexes_travel(self):
        catalog = make_small_catalog()
        index = catalog.hash_index("R2", "B")
        clone = roundtrip(catalog)
        cloned_index = clone.hash_index("R2", "B")
        keys = catalog.table("R1").column("B")
        matched, total = index.probe_stats(keys)
        assert cloned_index.probe_stats(keys) == (matched, total)

    def test_derived_registry_reset(self):
        catalog = make_small_catalog()
        derived = catalog.derived_with({})
        assert derived is not None
        clone = roundtrip(catalog)
        assert len(clone._derived) == 0  # fresh WeakSet, no stale refs

    def test_partitioned_table_layout_survives(self):
        catalog = Catalog()
        rng = np.random.default_rng(0)
        catalog.add_table("T", {"k": rng.integers(0, 50, 500)})
        partitioned = PartitionedTable.from_table(catalog.table("T"), "k", 4)
        clone = roundtrip(partitioned)
        assert clone.num_shards == partitioned.num_shards
        assert clone.fingerprint() == partitioned.fingerprint()
        rows = np.arange(10)
        assert (clone.original_rows(rows)
                == partitioned.original_rows(rows)).all()

    def test_mutation_after_pickle_diverges(self):
        catalog = make_small_catalog()
        clone = roundtrip(catalog)
        column = catalog.table("R3").column("C")
        column[0] += 1
        catalog.invalidate_indexes("R3")
        assert clone.fingerprint() != catalog.fingerprint()


class TestLRUCachePickling:
    def test_pickles_empty_with_capacity(self):
        cache = LRUCache(7)
        cache.put("a", 1)
        cache.get("a")
        clone = roundtrip(cache)
        assert clone.capacity == 7
        assert len(clone) == 0
        assert clone.stats.hits == 0
        # and the clone is fully functional (fresh lock)
        clone.put("b", 2)
        assert clone.get("b") == 2


class TestPlannerPickling:
    def test_planner_roundtrip_plans_identically(self):
        query = random_tree_query(7, seed=21)
        catalog = large_join_catalog(query, rows_per_relation=150, seed=21)
        planner = Planner(catalog, stats_cache=True, partitioning=2)
        clone = roundtrip(planner)
        local = planner.plan(query, mode="auto")
        remote = clone.plan(query, mode="auto")
        assert remote.order == local.order
        assert str(remote.mode) == str(local.mode)
        assert remote.predicted_cost == local.predicted_cost
        assert remote.num_shards == local.num_shards


class TestPlanSpec:
    @pytest.mark.parametrize("mode", ["auto", "COM", "SJ+COM"])
    def test_spec_roundtrip_and_rehydrate(self, mode):
        catalog = make_small_catalog()
        planner = Planner(catalog, stats_cache=True)
        plan = planner.plan(SIX_RELATION_SQL, mode=mode)
        spec = roundtrip(plan.to_spec(catalog.fingerprint()))
        assert isinstance(spec, PlanSpec)
        rehydrated = planner.rehydrate(spec, SIX_RELATION_SQL)
        assert rehydrated.order == plan.order
        assert rehydrated.mode == plan.mode
        assert rehydrated.child_orders == plan.child_orders
        assert rehydrated.predicted_cost == plan.predicted_cost
        a = plan.execute(collect_output=True)
        b = rehydrated.execute(collect_output=True)
        assert a.output_size == b.output_size
        assert a.counters.hash_probes == b.counters.hash_probes

    def test_stale_spec_rejected(self):
        catalog = make_small_catalog()
        planner = Planner(catalog)
        plan = planner.plan(SIX_RELATION_SQL)
        spec = plan.to_spec(catalog.fingerprint())
        column = catalog.table("R3").column("C")
        column[0] += 1
        catalog.invalidate_indexes("R3")
        with pytest.raises(ValueError, match="stale PlanSpec"):
            planner.rehydrate(spec, SIX_RELATION_SQL)

    def test_spec_child_orders_are_canonical(self):
        """``to_spec`` must not leak dict insertion order: two plans
        that differ only in the order ``child_orders`` was populated
        serialize to equal specs (specs are compared and cached)."""
        import dataclasses

        catalog = make_small_catalog()
        planner = Planner(catalog, stats_cache=True)
        plan = planner.plan(SIX_RELATION_SQL, mode="SJ+COM")
        assert plan.child_orders, "SJ mode should produce child orders"
        reversed_orders = dict(
            reversed(list(plan.child_orders.items()))
        )
        shuffled = dataclasses.replace(plan, child_orders=reversed_orders)
        fp = catalog.fingerprint()
        assert plan.to_spec(fp) == shuffled.to_spec(fp)
        assert plan.to_spec(fp).child_orders == tuple(
            sorted(plan.to_spec(fp).child_orders)
        )

    def test_partitioned_spec_pins_shard_count(self):
        query = random_tree_query(5, seed=22)
        catalog = large_join_catalog(query, rows_per_relation=200, seed=22)
        sharded = Planner(catalog, partitioning=2)
        plan = sharded.plan(query, mode="COM")
        assert plan.num_shards == 2
        spec = roundtrip(plan.to_spec(catalog.fingerprint()))
        rehydrated = sharded.rehydrate(spec, query)
        assert rehydrated.num_shards == 2
        unsharded = Planner(catalog, partitioning="off")
        with pytest.raises(ValueError, match="shard"):
            unsharded.rehydrate(spec, query)
