"""PlanCache keys: structural normalization + fingerprint + options."""

import pytest

from repro.core.parser import parse_query
from repro.core.query import JoinEdge, JoinQuery
from repro.service import PlanCache, normalized_query_key

SQL = ("select * from R1, R2, R3 "
       "where R1.B = R2.B and R2.C = R3.C and R1.A = 5")


def test_whitespace_and_case_insensitive():
    same = ("SELECT * FROM R1,   R2,R3 "
            "WHERE R1.B = R2.B AND R2.C = R3.C AND R1.A = 5")
    assert normalized_query_key(SQL) == normalized_query_key(same)


def test_from_order_is_part_of_key():
    # The first FROM relation is the implicit driver under
    # driver="fixed"; different FROM orders plan different drivers and
    # must not share a cache entry.
    swapped = ("select * from R2, R1, R3 "
               "where R1.B = R2.B and R2.C = R3.C and R1.A = 5")
    assert normalized_query_key(SQL) != normalized_query_key(swapped)


def test_predicate_order_insensitive():
    reordered = ("select * from R1, R2, R3 "
                 "where R1.A = 5 and R2.C = R3.C and R1.B = R2.B")
    assert normalized_query_key(SQL) == normalized_query_key(reordered)


def test_join_direction_insensitive():
    flipped = ("select * from R1, R2, R3 "
               "where R2.B = R1.B and R3.C = R2.C and R1.A = 5")
    assert normalized_query_key(SQL) == normalized_query_key(flipped)


def test_different_constants_are_different_keys():
    other = SQL.replace("R1.A = 5", "R1.A = 6")
    assert normalized_query_key(SQL) != normalized_query_key(other)


def test_literal_types_distinguished():
    number = "select * from R1, R2 where R1.B = R2.B and R1.A = 5"
    string = "select * from R1, R2 where R1.B = R2.B and R1.A = '5'"
    assert normalized_query_key(number) != normalized_query_key(string)


def test_parsed_query_matches_sql_key():
    assert normalized_query_key(parse_query(SQL)) == normalized_query_key(SQL)


def test_join_query_rooting_is_part_of_key():
    query = JoinQuery("R1", [JoinEdge("R1", "R2", "B", "B")])
    rerooted = query.rerooted("R2")
    assert normalized_query_key(query) != normalized_query_key(rerooted)
    # but edge declaration order is not
    two_edges = JoinQuery("R1", [
        JoinEdge("R1", "R2", "B", "B"), JoinEdge("R1", "R3", "E", "E"),
    ])
    swapped = JoinQuery("R1", [
        JoinEdge("R1", "R3", "E", "E"), JoinEdge("R1", "R2", "B", "B"),
    ])
    assert normalized_query_key(two_edges) == normalized_query_key(swapped)


def test_rejects_unknown_types():
    with pytest.raises(TypeError):
        normalized_query_key(42)


def test_cache_keys_include_fingerprint_and_options():
    cache = PlanCache(capacity=8)
    key_a = cache.key(SQL, "fp-1", ("COM",))
    key_b = cache.key(SQL, "fp-2", ("COM",))
    key_c = cache.key(SQL, "fp-1", ("STD",))
    assert len({key_a, key_b, key_c}) == 3
    cache.put(key_a, "plan")
    assert cache.get(key_a) == "plan"
    assert cache.get(key_b) is None
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_cache_lru_eviction():
    cache = PlanCache(capacity=2)
    keys = [cache.key(SQL, f"fp-{i}") for i in range(3)]
    for key in keys:
        cache.put(key, key)
    assert len(cache) == 2
    assert cache.get(keys[0]) is None
    assert cache.stats.evictions == 1
    cache.clear()
    assert len(cache) == 0
