"""AsyncQueryService: equivalence with the sync session, admission,
process-pool planning, failure isolation."""

import asyncio

import pytest

from repro import AsyncQueryService, QuerySession
from repro.service.async_service import _AdmissionSignals
from repro.service.session import QueryReport
from tests.helpers import make_small_catalog, result_tuples

SIX_RELATION_SQL = (
    "select * from R1, R2, R3, R4, R5, R6 "
    "where R1.B = R2.B and R2.C = R3.C and R2.D = R4.D "
    "and R1.E = R5.E and R5.F = R6.F"
)
TWO_RELATION_SQL = "select * from R1, R5 where R1.E = R5.E"


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def catalog():
    return make_small_catalog()


@pytest.fixture
def sync_report(catalog):
    return QuerySession(catalog).execute(SIX_RELATION_SQL,
                                         collect_output=True)


class TestEquivalence:
    def test_single_query_matches_sync(self, catalog, sync_report):
        async def go():
            async with AsyncQueryService(QuerySession(catalog)) as service:
                return await service.execute(SIX_RELATION_SQL,
                                             collect_output=True)

        report = run(go())
        assert report.ok
        assert report.plan.order == sync_report.plan.order
        assert report.plan.predicted_cost == sync_report.plan.predicted_cost
        assert (result_tuples(report.result, report.plan.query)
                == result_tuples(sync_report.result, sync_report.plan.query))
        counters = report.result.counters
        assert counters.hash_probes == sync_report.result.counters.hash_probes

    def test_many_concurrent_clients_match_sync(self, catalog, sync_report):
        async def go():
            async with AsyncQueryService(QuerySession(catalog),
                                         max_concurrency=16) as service:
                return await service.execute_many(
                    [SIX_RELATION_SQL] * 12, collect_output=True
                )

        reports = run(go())
        assert len(reports) == 12
        for report in reports:
            assert report.ok
            assert report.result.output_size == \
                sync_report.result.output_size
            assert report.result.counters.tuples_generated == \
                sync_report.result.counters.tuples_generated

    def test_mixed_queries_and_options(self, catalog):
        session = QuerySession(catalog)
        sync_six = session.execute(SIX_RELATION_SQL, mode="SJ+COM")
        sync_two = session.execute(TWO_RELATION_SQL, mode="STD")

        async def go():
            async with AsyncQueryService(QuerySession(catalog)) as service:
                return await asyncio.gather(
                    service.execute(SIX_RELATION_SQL, mode="SJ+COM"),
                    service.execute(TWO_RELATION_SQL, mode="STD"),
                )

        six, two = run(go())
        assert six.result.output_size == sync_six.result.output_size
        assert two.result.output_size == sync_two.result.output_size


class TestAdmission:
    def test_cache_hit_fast_path_counted(self, catalog):
        async def go():
            session = QuerySession(catalog)
            async with AsyncQueryService(session) as service:
                await service.execute(SIX_RELATION_SQL)
                await service.execute(SIX_RELATION_SQL)
                return service.stats()

        stats = run(go())
        assert stats["submitted"] == 2
        assert stats["completed"] == 2
        assert stats["cache_hit_fast_path"] == 1
        assert stats["planned_inline"] == 1

    def test_single_flight_cold_planning(self, catalog):
        async def go():
            session = QuerySession(catalog)
            async with AsyncQueryService(session) as service:
                await service.execute_many([SIX_RELATION_SQL] * 8)
                return service.stats(), session.plan_cache.stats.misses

        stats, cache_misses = run(go())
        # eight concurrent cold arrivals: one planning pass, the rest
        # either await it or hit the populated cache
        assert stats["planned_inline"] == 1
        assert cache_misses == 1

    def test_heavy_signal_classification(self):
        signals = _AdmissionSignals(threshold=0.01)
        light = QueryReport(query=None, result=object())
        light.shards_used = 1
        light.index_build_seconds = 0.001
        signals.observe("k", light)
        assert not signals.is_heavy("k")
        heavy = QueryReport(query=None, result=object())
        heavy.shards_used = 4
        heavy.index_build_seconds = 0.5
        signals.observe("k", heavy)
        assert signals.is_heavy("k")

    def test_heavy_queries_still_complete(self, catalog, sync_report):
        async def go():
            session = QuerySession(catalog)
            # threshold 0 marks everything observed as heavy, forcing
            # the heavy-slot path on the second wave
            async with AsyncQueryService(session, heavy_build_seconds=0.0,
                                         heavy_slots=1) as service:
                await service.execute_many([SIX_RELATION_SQL] * 3)
                reports = await service.execute_many(
                    [SIX_RELATION_SQL] * 3, collect_output=True
                )
                return reports, service.stats()

        reports, stats = run(go())
        assert all(report.ok for report in reports)
        assert stats["heavy_admissions"] >= 1
        assert reports[0].result.output_size == sync_report.result.output_size


class TestFailureIsolation:
    def test_mid_batch_failures_recorded(self, catalog):
        async def go():
            async with AsyncQueryService(QuerySession(catalog)) as service:
                return await service.execute_many(
                    [SIX_RELATION_SQL,
                     "select * frm broken",
                     "select * from NOPE, R2 where NOPE.B = R2.B",
                     SIX_RELATION_SQL],
                    budgets=[50_000_000, 50_000_000, 50_000_000, 10],
                )

        reports = run(go())
        assert reports[0].ok
        assert not reports[1].ok and reports[1].error is not None
        assert not reports[2].ok and reports[2].error is not None
        assert reports[3].timed_out and reports[3].error is None

    def test_budget_arity_still_checked(self, catalog):
        async def go():
            async with AsyncQueryService(QuerySession(catalog)) as service:
                await service.execute_many([SIX_RELATION_SQL], budgets=[1, 2])

        with pytest.raises(ValueError, match="budgets"):
            run(go())

    def test_closed_service_rejects_work(self, catalog):
        service = AsyncQueryService(QuerySession(catalog))
        service.close()

        async def go():
            await service.execute(SIX_RELATION_SQL)

        with pytest.raises(RuntimeError, match="closed"):
            run(go())


class TestProcessPoolPlanning:
    def test_worker_planned_spec_matches_inline(self, catalog, sync_report):
        async def go():
            session = QuerySession(catalog)
            async with AsyncQueryService(
                session, planning_workers=1, process_min_relations=2
            ) as service:
                report = await service.execute(SIX_RELATION_SQL,
                                               collect_output=True)
                return report, service.stats()

        report, stats = run(go())
        assert stats["planned_in_process_pool"] == 1
        assert stats["process_pool_fallbacks"] == 0
        assert report.ok
        assert report.plan.order == sync_report.plan.order
        assert report.plan.mode == sync_report.plan.mode
        assert report.plan.predicted_cost == sync_report.plan.predicted_cost
        assert (result_tuples(report.result, report.plan.query)
                == result_tuples(sync_report.result, sync_report.plan.query))

    def test_small_queries_stay_inline(self, catalog):
        async def go():
            session = QuerySession(catalog)
            async with AsyncQueryService(
                session, planning_workers=1, process_min_relations=10
            ) as service:
                await service.execute(TWO_RELATION_SQL)
                return service.stats()

        stats = run(go())
        assert stats["planned_in_process_pool"] == 0
        assert stats["planned_inline"] == 1

    def test_catalog_change_respawns_pool(self, catalog):
        async def go():
            session = QuerySession(catalog)
            async with AsyncQueryService(
                session, planning_workers=1, process_min_relations=2
            ) as service:
                first = await service.execute(SIX_RELATION_SQL)
                # change a table's data: the fingerprint changes, the
                # old worker pool holds stale bytes and must be retired
                table = catalog.table("R4")
                catalog.add_table("R4", {"D": table.column("D")[:-1]})
                second = await service.execute(SIX_RELATION_SQL)
                return first, second, service.stats()

        first, second, stats = run(go())
        assert first.ok and second.ok
        assert stats["planned_in_process_pool"] == 2


class TestReportObservability:
    def test_cache_stats_snapshot_on_reports(self, catalog):
        session = QuerySession(catalog)
        first = session.execute(SIX_RELATION_SQL)
        second = session.execute(SIX_RELATION_SQL)
        assert first.cache_stats["plan_cache"]["misses"] == 1
        assert second.cache_stats["plan_cache"]["hits"] == 1
        # snapshots are frozen dicts, not live counters
        session.execute(SIX_RELATION_SQL)
        assert second.cache_stats["plan_cache"]["hits"] == 1

    def test_session_cache_stats_shape(self, catalog):
        session = QuerySession(catalog)
        session.execute(SIX_RELATION_SQL)
        stats = session.cache_stats()
        for cache in ("plan_cache", "stats_cache"):
            for field in ("hits", "misses", "evictions", "invalidations",
                          "size", "hit_rate"):
                assert field in stats[cache], (cache, field)
        assert stats["plan_cache"]["size"] == 1
