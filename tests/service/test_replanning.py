"""Runtime-feedback replanning through the session and async service.

The adaptive half of the robustness knob: ``robustness="auto"``
executions run monitored, abort when observed cardinalities leave the
trusted region, replan with corrected statistics, and publish the
corrected plan to the plan cache so warm traffic never re-trips.
"""

import asyncio

import pytest

from repro import AsyncQueryService, QuerySession
from repro.engine import CardinalityMonitor, ReplanSignal, corrected_stats
from repro.core import EdgeStats, QueryStats

from tests.core.test_bounds import (
    CORRUPTION,
    adversarial_query,
    make_adversarial_catalog,
)
from tests.helpers import (
    StatsCorruptingCatalog,
    brute_force_join,
    make_running_example_query,
    make_small_catalog,
    result_tuples,
)

#: trips on any estimate that is even marginally wrong
HAIR_TRIGGER = 1.000001


def make_corrupted_session(**kwargs):
    catalog = make_adversarial_catalog()
    corrupted = StatsCorruptingCatalog(catalog, CORRUPTION)
    defaults = dict(robustness="auto", replan_threshold=4.0)
    defaults.update(kwargs)
    return catalog, QuerySession(corrupted, **defaults)


# ----------------------------------------------------------------------
# Monitor unit behaviour
# ----------------------------------------------------------------------


def test_monitor_trips_and_carries_observations():
    monitor = CardinalityMonitor({"A": 0.5, "B": 0.01}, threshold=3.0)
    monitor.observe("A", 100, 60)  # q = 1.2, below threshold
    assert monitor.max_q_error == pytest.approx(1.2)
    with pytest.raises(ReplanSignal) as excinfo:
        monitor.observe("B", 100, 40)  # q = 40
    signal = excinfo.value
    assert signal.relation == "B"
    assert signal.position == 2
    assert signal.q_error == pytest.approx(40.0)
    assert signal.observed == {"A": (100, 60), "B": (100, 40)}


def test_monitor_skips_unknown_and_empty_probes():
    monitor = CardinalityMonitor({"A": 0.5}, threshold=2.0)
    monitor.observe("Z", 100, 100)  # no estimate: teaches nothing
    monitor.observe("A", 0, 0)  # dead prefix: teaches nothing
    assert monitor.max_q_error == 1.0
    assert monitor.observed == {}


def test_monitor_rejects_sub_one_threshold():
    with pytest.raises(ValueError, match="q-error"):
        CardinalityMonitor({}, threshold=0.5)


def test_corrected_stats_snap_observed_edges():
    stats = QueryStats(
        100.0,
        {"A": EdgeStats(0.5, 2.0), "B": EdgeStats(0.1, 1.0)},
        relation_sizes={"R": 100, "A": 50, "B": 20},
    )
    corrected = corrected_stats(stats, {"A": (100, 400), "Z": (10, 5)})
    assert corrected.selectivity("A") == pytest.approx(4.0)
    # unobserved edges keep their estimates
    assert corrected.selectivity("B") == pytest.approx(0.1)
    assert stats.selectivity("A") == pytest.approx(1.0)  # original intact


# ----------------------------------------------------------------------
# Session knobs
# ----------------------------------------------------------------------


def test_session_validates_replan_knobs():
    catalog = make_small_catalog()
    with pytest.raises(ValueError, match="q-error"):
        QuerySession(catalog, replan_threshold=0.9)
    with pytest.raises(ValueError, match="max_replans"):
        QuerySession(catalog, max_replans=-1)
    with pytest.raises(ValueError):
        QuerySession(catalog, robustness="never")


def test_cache_keys_distinguish_robustness_posture():
    catalog = make_small_catalog()
    session = QuerySession(catalog)
    query = make_running_example_query()
    keys = {
        session.cache_key(query, robustness=robustness)
        for robustness in ("off", "bounded", "auto")
    }
    assert len(keys) == 3


def test_cache_keys_distinguish_regret_factor():
    catalog = make_small_catalog()
    query = make_running_example_query()
    key_a = QuerySession(catalog, regret_factor=4.0).cache_key(query)
    key_b = QuerySession(catalog, regret_factor=16.0).cache_key(query)
    assert key_a != key_b


# ----------------------------------------------------------------------
# The replan loop
# ----------------------------------------------------------------------


def test_replanning_recovers_from_corrupted_stats():
    catalog, session = make_corrupted_session()
    query = adversarial_query()
    report = session.execute(query, mode="STD", collect_output=True)
    assert report.ok
    assert report.replans >= 1
    assert report.observed_q_error > session.replan_threshold
    # the served plan is the corrected one, not the optimistic original
    assert report.plan.order == ["S", "H"]
    assert result_tuples(report.result, query) == brute_force_join(
        catalog, query
    )


def test_corrected_plan_serves_warm_traffic():
    catalog, session = make_corrupted_session()
    query = adversarial_query()
    cold = session.execute(query, mode="STD")
    assert cold.replans >= 1
    warm = session.execute(query, mode="STD")
    assert warm.cache_hit
    assert warm.replans == 0  # the corrected plan does not re-trip
    assert warm.plan.order == cold.plan.order


def test_off_and_bounded_postures_never_replan():
    for robustness in ("off", "bounded"):
        catalog, session = make_corrupted_session(robustness=robustness)
        report = session.execute(
            adversarial_query(), mode="STD", collect_output=True
        )
        assert report.ok
        assert report.replans == 0
        assert result_tuples(report.result, adversarial_query()) == \
            brute_force_join(catalog, adversarial_query())


def test_zero_replan_budget_runs_unmonitored():
    catalog, session = make_corrupted_session(max_replans=0)
    report = session.execute(adversarial_query(), mode="STD",
                             collect_output=True)
    assert report.ok
    assert report.replans == 0
    assert result_tuples(report.result, adversarial_query()) == \
        brute_force_join(catalog, adversarial_query())


def test_replan_budget_bounds_retries():
    """A hair-trigger threshold cannot loop: replans <= max_replans."""
    catalog, session = make_corrupted_session(
        replan_threshold=HAIR_TRIGGER, max_replans=2
    )
    report = session.execute(adversarial_query(), mode="STD",
                             collect_output=True)
    assert report.ok
    assert report.replans <= 2
    assert result_tuples(report.result, adversarial_query()) == \
        brute_force_join(catalog, adversarial_query())


def test_clean_stats_do_not_replan_on_default_threshold():
    catalog = make_small_catalog()
    session = QuerySession(catalog, robustness="auto")
    report = session.execute(make_running_example_query(), mode="STD")
    assert report.ok
    assert report.replans == 0
    assert report.observed_q_error >= 1.0


def test_planner_refuses_to_replan_cyclic_plans():
    import numpy as np

    rng = np.random.default_rng(5)
    from repro.storage import Catalog

    catalog = Catalog()
    catalog.add_table("A", {"x": rng.integers(0, 5, 20),
                            "y": rng.integers(0, 5, 20)})
    catalog.add_table("B", {"x": rng.integers(0, 5, 15),
                            "z": rng.integers(0, 5, 15)})
    catalog.add_table("C", {"y": rng.integers(0, 5, 10),
                            "z": rng.integers(0, 5, 10)})
    session = QuerySession(catalog, robustness="auto")
    plan = session.plan(
        "select * from A, B, C "
        "where A.x = B.x and A.y = C.y and B.z = C.z"
    )
    assert plan.is_cyclic
    with pytest.raises(ValueError, match="cyclic"):
        session.planner.replan(plan, plan.stats)
    # through the session the cyclic plan simply runs unmonitored
    report = session.execute(
        "select * from A, B, C "
        "where A.x = B.x and A.y = C.y and B.z = C.z"
    )
    assert report.ok
    assert report.replans == 0


# ----------------------------------------------------------------------
# Async service wiring
# ----------------------------------------------------------------------


def test_async_service_reports_and_counts_replans():
    catalog, session = make_corrupted_session()
    query = adversarial_query()

    async def go():
        async with AsyncQueryService(session) as service:
            return await service.execute(query, mode="STD",
                                         collect_output=True), \
                service.stats()

    report, stats = asyncio.run(go())
    assert report.ok
    assert report.replans >= 1
    assert stats["replans"] == report.replans
    assert result_tuples(report.result, query) == brute_force_join(
        catalog, query
    )
