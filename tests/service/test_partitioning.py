"""Partitioning threaded through Planner and QuerySession.

Covers the acceptance bar of the partition-aware storage refactor:
``partitioning="off"`` / ``num_shards=1`` is bit-identical to the
monolithic planner (plans, costs, results), larger shard counts change
only the physical layout, the plan cache keys on the *resolved* shard
count, and service reports carry the shard/per-phase timing shape.
"""

import pytest

from repro import ExecutionMode, Planner, QuerySession
from repro.planner import AUTO_MAX_SHARDS, AUTO_MIN_ROWS_PER_SHARD
from repro.storage import PartitionedTable
from repro.workloads.partitioned import scan_probe_catalog, scan_probe_query
from tests.helpers import make_small_catalog, result_tuples

SIX_RELATION_SQL = (
    "select * from R1, R2, R3, R4, R5, R6 "
    "where R1.B = R2.B and R2.C = R3.C and R2.D = R4.D "
    "and R1.E = R5.E and R5.F = R6.F"
)


@pytest.fixture(scope="module")
def catalog():
    return make_small_catalog()


# ----------------------------------------------------------------------
# Planner knob
# ----------------------------------------------------------------------


class TestPlannerKnob:
    def test_off_and_one_shard_are_bit_identical_to_default(self, catalog):
        baseline = Planner(catalog).plan(SIX_RELATION_SQL, mode="auto")
        for partitioning in ("off", 1):
            plan = Planner(catalog, partitioning=partitioning).plan(
                SIX_RELATION_SQL, mode="auto"
            )
            assert plan.order == baseline.order
            assert plan.mode is baseline.mode
            assert plan.predicted_cost == baseline.predicted_cost
            assert plan.query.root == baseline.query.root
            assert plan.num_shards == 1
            for relation in plan.query.relations:
                assert not isinstance(
                    plan.catalog.table(relation), PartitionedTable
                )

    def test_sharded_plan_same_cost_same_results(self, catalog):
        baseline = Planner(catalog).plan(SIX_RELATION_SQL, mode="auto")
        plan = Planner(catalog, partitioning=3).plan(
            SIX_RELATION_SQL, mode="auto"
        )
        assert plan.num_shards == 3
        assert plan.order == baseline.order
        assert plan.predicted_cost == baseline.predicted_cost
        expected = result_tuples(
            baseline.execute(collect_output=True), baseline.query
        )
        got = result_tuples(plan.execute(collect_output=True), plan.query)
        assert got == expected
        for relation in plan.query.non_root_relations:
            table = plan.catalog.table(relation)
            assert isinstance(table, PartitionedTable)
            assert table.num_shards == 3
        assert not isinstance(
            plan.catalog.table(plan.query.root), PartitionedTable
        )

    def test_per_call_override_beats_planner_default(self, catalog):
        planner = Planner(catalog, partitioning=4)
        assert planner.plan(SIX_RELATION_SQL, partitioning="off").num_shards == 1
        assert planner.plan(SIX_RELATION_SQL).num_shards == 4

    def test_partitioned_catalog_reused_across_plan_calls(self, catalog):
        planner = Planner(catalog, partitioning=2)
        first = planner.plan(SIX_RELATION_SQL)
        second = planner.plan(SIX_RELATION_SQL)
        # content-addressed reuse: one re-clustered catalog, not one per call
        assert first.catalog is second.catalog

    def test_driver_auto_with_partitioning_is_correct(self, catalog):
        baseline = Planner(catalog).plan(
            SIX_RELATION_SQL, mode=ExecutionMode.COM, driver="auto"
        )
        plan = Planner(catalog, partitioning=2).plan(
            SIX_RELATION_SQL, mode=ExecutionMode.COM, driver="auto"
        )
        assert plan.query.root == baseline.query.root
        assert plan.predicted_cost == baseline.predicted_cost
        assert result_tuples(
            plan.execute(collect_output=True), plan.query
        ) == result_tuples(
            baseline.execute(collect_output=True), baseline.query
        )

    def test_explain_mentions_shards(self, catalog):
        plan = Planner(catalog, partitioning=2).plan(SIX_RELATION_SQL)
        assert "shards=2" in plan.explain()

    def test_rejects_invalid_partitioning(self, catalog):
        with pytest.raises(ValueError, match="partitioning"):
            Planner(catalog, partitioning="sideways")
        with pytest.raises(ValueError, match="shard count"):
            Planner(catalog, partitioning=0)
        with pytest.raises(ValueError, match="partitioning"):
            Planner(catalog).plan(SIX_RELATION_SQL, partitioning=True)


class TestAutoResolution:
    def test_off_resolves_to_one(self, catalog):
        assert Planner(catalog).resolve_partitioning("off") == 1
        assert Planner(catalog).resolve_partitioning(None) == 1

    def test_int_resolves_to_itself(self, catalog):
        assert Planner(catalog).resolve_partitioning(6) == 6

    def test_auto_small_tables_resolve_to_one(self, catalog):
        planner = Planner(catalog, partitioning="auto")
        assert planner.resolve_partitioning("auto", SIX_RELATION_SQL) == 1
        assert planner.plan(SIX_RELATION_SQL).num_shards == 1

    def test_auto_scales_with_table_size(self, monkeypatch):
        big = scan_probe_catalog(
            64, AUTO_MIN_ROWS_PER_SHARD * 3, seed=1
        )
        planner = Planner(big)
        monkeypatch.setattr("repro.planner.os.cpu_count", lambda: 8)
        resolved = planner.resolve_partitioning("auto", scan_probe_query())
        assert resolved == 3
        monkeypatch.setattr("repro.planner.os.cpu_count", lambda: 2)
        assert planner.resolve_partitioning("auto", scan_probe_query()) == 2

    def test_auto_capped(self, monkeypatch):
        big = scan_probe_catalog(
            64, AUTO_MIN_ROWS_PER_SHARD * (AUTO_MAX_SHARDS + 5), seed=1
        )
        monkeypatch.setattr("repro.planner.os.cpu_count", lambda: 64)
        resolved = Planner(big).resolve_partitioning(
            "auto", scan_probe_query()
        )
        assert resolved == AUTO_MAX_SHARDS


# ----------------------------------------------------------------------
# QuerySession integration
# ----------------------------------------------------------------------


class TestSessionPartitioning:
    def test_resolved_shard_count_keys_the_plan_cache(self):
        session = QuerySession(make_small_catalog())
        plain = session.plan(SIX_RELATION_SQL)
        sharded = session.plan(SIX_RELATION_SQL, partitioning=2)
        assert plain.num_shards == 1 and sharded.num_shards == 2
        assert session.plan_cache.stats.misses == 2  # no cross-serving
        # repeat requests hit their own entries
        assert session.plan(SIX_RELATION_SQL) is plain
        assert session.plan(SIX_RELATION_SQL, partitioning=2) is sharded
        assert session.plan_cache.stats.hits == 2
        # "off" and an explicit 1 resolve identically -> shared entry
        assert session.plan(SIX_RELATION_SQL, partitioning=1) is plain

    def test_session_default_partitioning_forwarded(self):
        session = QuerySession(make_small_catalog(), partitioning=2)
        assert session.plan(SIX_RELATION_SQL).num_shards == 2
        assert session.plan(SIX_RELATION_SQL, partitioning="off").num_shards == 1

    def test_report_carries_shards_and_index_build_time(self):
        catalog = make_small_catalog()
        expected = result_tuples(
            QuerySession(catalog).plan(SIX_RELATION_SQL)
            .execute(collect_output=True),
            QuerySession(catalog).plan(SIX_RELATION_SQL).query,
        )
        session = QuerySession(catalog, partitioning=2)
        report = session.execute(SIX_RELATION_SQL, collect_output=True)
        assert report.ok
        assert report.shards_used == 2
        assert report.index_build_seconds >= 0.0
        assert report.execution_seconds >= report.index_build_seconds
        assert result_tuples(report.result, report.plan.query) == expected

    def test_execute_many_reports_share_the_timing_shape(self):
        session = QuerySession(make_small_catalog(), partitioning=2)
        queries = [
            SIX_RELATION_SQL,
            "select * from R1, R2 where R1.B = R2.B",
        ]
        reports = session.execute_many(queries)
        assert [r.ok for r in reports] == [True, True]
        for report in reports:
            assert report.shards_used == 2
            assert report.index_build_seconds >= 0.0

    def test_failed_execution_keeps_default_shape(self):
        session = QuerySession(make_small_catalog(), partitioning=2)
        report = session.execute(
            SIX_RELATION_SQL, max_intermediate_tuples=1
        )
        assert report.timed_out
        assert report.shards_used == 1  # engine never reported back
        assert report.index_build_seconds == 0.0

    def test_prepared_statement_over_partitioned_session(self):
        catalog = make_small_catalog()
        baseline = QuerySession(catalog).prepare(
            "select * from R1, R2 where R1.B = R2.B and R2.C = ?"
        )
        sharded = QuerySession(catalog, partitioning=2).prepare(
            "select * from R1, R2 where R1.B = R2.B and R2.C = ?"
        )
        for constant in (0, 3, 5):
            want = baseline.execute(constant, collect_output=True)
            got = sharded.execute(constant, collect_output=True)
            assert want.ok and got.ok
            assert result_tuples(got.result, got.plan.query) == \
                result_tuples(want.result, want.plan.query)


def test_partitioned_probe_counts_match_unpartitioned_session():
    catalog = scan_probe_catalog(3000, 6000, seed=9)
    query = scan_probe_query()
    base = QuerySession(catalog).execute(query, mode=ExecutionMode.COM)
    sharded = QuerySession(catalog, partitioning=4).execute(
        query, mode=ExecutionMode.COM
    )
    assert base.ok and sharded.ok
    assert sharded.shards_used == 4
    assert sharded.result.counters.hash_probes == \
        base.result.counters.hash_probes
    assert sharded.result.output_size == base.result.output_size
    assert sharded.plan.predicted_cost == base.plan.predicted_cost


# ----------------------------------------------------------------------
# Regression tests from review: staleness, value access, dtype mixes
# ----------------------------------------------------------------------


def test_inplace_mutation_repartitions_after_invalidate():
    """The content-addressed partition cache must miss once an in-place
    mutation is acknowledged via Catalog.invalidate_indexes."""
    catalog = scan_probe_catalog(500, 1000, seed=4)
    planner = Planner(catalog, partitioning=2)
    query = scan_probe_query()
    before = planner.plan(query, mode=ExecutionMode.COM).execute()
    # wipe the build side's keys out of the probe domain, in place
    catalog.table("build").column("key")[:] = -1
    catalog.invalidate_indexes()
    after = planner.plan(query, mode=ExecutionMode.COM).execute()
    unpartitioned = Planner(catalog).plan(
        query, mode=ExecutionMode.COM
    ).execute()
    assert before.output_size > 0
    assert after.output_size == unpartitioned.output_size == 0


def test_partitioned_gather_speaks_base_row_ids():
    """ExecutionResult.output_rows are base ids; gather() through the
    plan's (partitioned) catalog must return the same values as the
    unpartitioned run."""
    catalog = scan_probe_catalog(400, 800, seed=5)
    query = scan_probe_query()
    base_plan = Planner(catalog).plan(query, mode=ExecutionMode.COM)
    part_plan = Planner(catalog, partitioning=3).plan(
        query, mode=ExecutionMode.COM
    )
    base = base_plan.execute(collect_output=True)
    part = part_plan.execute(collect_output=True)

    def payload_pairs(plan, result):
        rows = result.output_rows
        driver = plan.catalog.table("driver").gather(rows["driver"], ["id"])
        build = plan.catalog.table("build").gather(rows["build"], ["payload"])
        return sorted(zip(driver["id"].tolist(), build["payload"].tolist()))

    assert payload_pairs(part_plan, part) == payload_pairs(base_plan, base)


def test_invalidation_survives_collected_intermediate_catalog():
    """A derivation chain must keep propagating invalidation even when
    an intermediate derivative goes out of scope."""
    import gc

    from repro.storage import Catalog

    parent = Catalog()
    parent.add_table("t", {"a": [1, 1]})
    leaf = parent.derived_with({}).derived_with({})
    stale = leaf.hash_index("t", "a")
    gc.collect()  # the unnamed intermediate must not break the chain
    parent.table("t").column("a")[:] = [3, 4]
    parent.invalidate_indexes()
    rebuilt = leaf.hash_index("t", "a")
    assert rebuilt is not stale
    assert rebuilt.num_distinct == 2


def test_invalidate_indexes_refreshes_fingerprints():
    from repro.storage import Catalog

    catalog = Catalog()
    catalog.add_table("t", {"a": [1, 2]})
    before = catalog.fingerprint()
    catalog.table("t").column("a")[0] = 9
    catalog.invalidate_indexes("t")
    assert catalog.fingerprint() != before


def test_float_probe_column_into_partitioned_int_key():
    """Float probe keys execute identically with partitioning on/off."""
    import numpy as np

    from repro.core.query import JoinEdge, JoinQuery
    from repro.storage import Catalog

    catalog = Catalog()
    keys = np.asarray([0.0, 1.0, 2.5, 3.0, np.nan, np.inf, -1.0, 1e300])
    catalog.add_table("d", {"key": keys})
    catalog.add_table("b", {"key": np.asarray([0, 1, 3, 3, 7]),
                            "payload": np.arange(5)})
    query = JoinQuery("d", [JoinEdge("d", "b", "key", "key")])
    base = Planner(catalog).plan(query, mode=ExecutionMode.COM)
    part = Planner(catalog, partitioning=4).plan(
        query, mode=ExecutionMode.COM
    )
    r0 = base.execute(collect_output=True)
    r1 = part.execute(collect_output=True)
    assert r0.output_size == r1.output_size == 4  # 0, 1, 3, 3
    for rel in ("d", "b"):
        assert sorted(r0.output_rows[rel].tolist()) == \
            sorted(r1.output_rows[rel].tolist())


def test_factorized_expansion_speaks_base_row_ids():
    """flat_output=False keeps the factorized object; its expansion must
    yield the same base ids as the unpartitioned run (no double-map
    through gather)."""
    import numpy as np

    catalog = scan_probe_catalog(300, 600, seed=6)
    query = scan_probe_query()
    base_plan = Planner(catalog).plan(query, mode=ExecutionMode.COM)
    part_plan = Planner(catalog, partitioning=3).plan(
        query, mode=ExecutionMode.COM
    )
    base = base_plan.execute(flat_output=False).factorized.expand_all()
    part = part_plan.execute(flat_output=False).factorized.expand_all()
    rels = sorted(base)
    assert sorted(zip(*(part[r].tolist() for r in rels))) == \
        sorted(zip(*(base[r].tolist() for r in rels)))
    # gather over expanded rows returns joined values, not garbage
    values = part_plan.catalog.table("build").gather(part["build"], ["key"])
    probes = catalog.table("driver").column("key")[part["driver"]]
    assert (np.asarray(values["key"]) == probes).all()


def test_sampling_stats_are_layout_independent():
    catalog = scan_probe_catalog(2000, 4000, seed=8)
    query = scan_probe_query()
    base = Planner(catalog).plan(query, stats="sampling")
    part = Planner(catalog, partitioning=4).plan(query, stats="sampling")
    assert part.predicted_cost == base.predicted_cost
    assert part.order == base.order and part.mode is base.mode


def test_bool_probe_keys_route_like_merged_index():
    import numpy as np

    from repro.storage import HashIndex, ShardedHashIndex

    keys = np.asarray([0, 1, 1, 2, 0])
    probes = np.asarray([True, False, True])
    sharded = ShardedHashIndex(keys, 4)
    merged = HashIndex(keys)
    assert (sharded.lookup(probes).counts
            == merged.lookup(probes).counts).all()
    assert (sharded.contains(probes) == merged.contains(probes)).all()


def test_keys_beyond_float_exact_range_stay_unpartitioned():
    """int64 keys >= 2**53 make float probes ambiguous under float64
    comparison (several ints collapse onto one float), so such
    relations are never sharded: the planner keeps the merged view and
    direct sharding is rejected with a clear error."""
    import numpy as np

    from repro.core.query import JoinEdge, JoinQuery
    from repro.storage import (
        Catalog,
        HashIndex,
        PartitionedTable,
        ShardedHashIndex,
        partitioned_catalog,
    )

    big = 2**53 + 1
    with pytest.raises(ValueError, match="2\\*\\*53"):
        ShardedHashIndex(np.asarray([big, 5], dtype=np.int64), 4)

    catalog = Catalog()
    catalog.add_table("d", {"key": np.asarray([float(big), 5.0])})
    catalog.add_table("b", {"key": np.asarray([big, 5], dtype=np.int64),
                            "payload": np.arange(2)})
    query = JoinQuery("d", [JoinEdge("d", "b", "key", "key")])
    derived = partitioned_catalog(catalog, query, 4)
    assert not isinstance(derived.table("b"), PartitionedTable)
    # planner path: merged view, identical to unpartitioned execution
    base = Planner(catalog).plan(query, mode=ExecutionMode.COM)
    part = Planner(catalog, partitioning=4).plan(query, mode=ExecutionMode.COM)
    assert isinstance(part.catalog.hash_index("b", "key"), HashIndex)
    r0 = base.execute(collect_output=True)
    r1 = part.execute(collect_output=True)
    assert r0.output_size == r1.output_size
    for rel in ("d", "b"):
        assert sorted(r0.output_rows[rel].tolist()) == \
            sorted(r1.output_rows[rel].tolist())


def test_float_safe_huge_probes_still_miss_cleanly():
    import numpy as np

    from repro.storage import HashIndex, ShardedHashIndex

    keys = np.asarray([0, 5, 2**52], dtype=np.int64)
    probes = np.asarray([5.0, float(2**52), 2.0**53, 2.0**63, -(2.0**63)])
    sharded = ShardedHashIndex(keys, 4)
    merged = HashIndex(keys)
    assert (sharded.lookup(probes).counts
            == merged.lookup(probes).counts).all()
    assert sharded.lookup(probes).counts.tolist()[:2] == [1, 1]


def test_recluster_reused_across_driver_side_literals():
    """Queries differing only in a driver-side selection constant must
    reuse the re-clustered probe tables, not re-partition."""
    catalog = scan_probe_catalog(500, 1000, seed=11)
    planner = Planner(catalog, partitioning=2)
    plans = [
        planner.plan(
            f"select * from driver, build "
            f"where driver.key = build.key and driver.id = {constant}"
        )
        for constant in (1, 2, 3)
    ]
    tables = [plan.catalog.table("build") for plan in plans]
    assert all(isinstance(t, PartitionedTable) for t in tables)
    assert tables[0] is tables[1] is tables[2]
    # a selection on the partitioned relation itself must re-cluster
    filtered = planner.plan(
        "select * from driver, build "
        "where driver.key = build.key and build.payload = 7"
    )
    assert filtered.catalog.table("build") is not tables[0]
    assert len(filtered.catalog.table("build")) == 1


def test_num_shards_reports_effective_fanout():
    """When nothing is shardable the plan must not claim a fan-out."""
    import numpy as np

    from repro.core.query import JoinEdge, JoinQuery
    from repro.storage import Catalog

    catalog = Catalog()
    catalog.add_table("d", {"key": np.asarray([1.5, 2.5])})
    catalog.add_table("b", {"key": np.asarray([1.5, 2.5]),
                            "p": np.arange(2)})
    query = JoinQuery("d", [JoinEdge("d", "b", "key", "key")])
    plan = Planner(catalog, partitioning=8).plan(query, mode=ExecutionMode.COM)
    assert plan.num_shards == 1
    assert "shards=" not in plan.explain()
    assert plan.execute().shards_used == 1


def test_report_carries_reduction_seconds_for_sj_modes():
    session = QuerySession(make_small_catalog(), partitioning=2)
    report = session.execute(SIX_RELATION_SQL, mode=ExecutionMode.SJ_COM)
    assert report.ok
    assert report.reduction_seconds > 0.0
    plain = session.execute(SIX_RELATION_SQL, mode=ExecutionMode.COM)
    assert plain.ok and plain.reduction_seconds == 0.0


def test_planning_sql_over_user_partitioned_catalog_returns_base_ids():
    """push_down_selections over an already re-clustered catalog must
    rebuild relations in base row order (layout-independent results)."""
    from repro.storage import partitioned_catalog

    catalog = scan_probe_catalog(300, 600, seed=12)
    pre_partitioned = partitioned_catalog(catalog, scan_probe_query(), 4)
    sql = "select * from driver, build where driver.key = build.key"
    base = Planner(catalog).plan(sql).execute(collect_output=True)
    part = Planner(pre_partitioned).plan(sql).execute(collect_output=True)
    for rel in ("driver", "build"):
        assert sorted(part.output_rows[rel].tolist()) == \
            sorted(base.output_rows[rel].tolist())
    # with a selection on the partitioned relation
    sql_sel = sql + " and build.payload = 5"
    base_sel = Planner(catalog).plan(sql_sel).execute(collect_output=True)
    part_sel = Planner(pre_partitioned).plan(sql_sel).execute(
        collect_output=True
    )
    assert sorted(zip(part_sel.output_rows["driver"].tolist(),
                      part_sel.output_rows["build"].tolist())) == \
        sorted(zip(base_sel.output_rows["driver"].tolist(),
                   base_sel.output_rows["build"].tolist()))


def test_prepared_statement_rebinds_keep_shard_fanout():
    """Every binding of a prepared statement over a partitioned session
    must fan out, not just the first."""
    catalog = scan_probe_catalog(400, 900, seed=13)
    session = QuerySession(catalog, partitioning=4)
    statement = session.prepare(
        "select * from driver, build "
        "where driver.key = build.key and build.payload = ?"
    )
    baseline = QuerySession(catalog).prepare(
        "select * from driver, build "
        "where driver.key = build.key and build.payload = ?"
    )
    for constant in (3, 7, 11):
        got = statement.execute(constant, collect_output=True)
        want = baseline.execute(constant, collect_output=True)
        assert got.ok and want.ok
        assert got.shards_used == 4, constant
        assert result_tuples(got.result, got.plan.query) == \
            result_tuples(want.result, want.plan.query)


def test_held_plan_sees_parent_invalidation_through_pushdown():
    """A pushdown catalog shares the base catalog's arrays; re-running a
    held plan after an acknowledged in-place mutation must rebuild its
    indexes instead of serving stale join rows."""
    import numpy as np

    from repro.storage import Catalog

    rng = np.random.default_rng(17)
    catalog = Catalog()
    catalog.add_table("d", {"key": rng.integers(0, 20, 200)})
    catalog.add_table("b", {"key": rng.integers(0, 20, 300),
                            "payload": np.arange(300)})
    sql = "select * from d, b where d.key = b.key"
    plan = Planner(catalog).plan(sql)
    before = plan.execute().output_size
    assert before > 0
    catalog.table("b").column("key")[:] = -1  # in-place, out of domain
    catalog.invalidate_indexes("b")
    assert plan.execute().output_size == 0


def test_sampling_stats_cache_shared_across_shard_counts():
    from repro.core.stats import StatsCache

    catalog = scan_probe_catalog(2000, 4000, seed=14)
    cache = StatsCache()
    planner = Planner(catalog, stats_cache=cache)
    planner.plan(scan_probe_query(), stats="sampling", partitioning="off")
    misses = cache.stats.misses
    planner.plan(scan_probe_query(), stats="sampling", partitioning=4)
    assert cache.stats.misses == misses  # second derivation is a hit


def test_auto_mode_skips_reclustering_heavily_filtered_tables(monkeypatch):
    """auto sizes shards from base tables; a selective pushdown must not
    re-cluster the tiny filtered result (explicit ints still do)."""
    monkeypatch.setattr("repro.planner.os.cpu_count", lambda: 8)
    catalog = scan_probe_catalog(64, AUTO_MIN_ROWS_PER_SHARD * 2, seed=15)
    planner = Planner(catalog, partitioning="auto")
    assert planner.resolve_partitioning("auto", scan_probe_query()) == 2
    sql = ("select * from driver, build "
           "where driver.key = build.key and build.payload = 7")
    plan = planner.plan(sql)
    assert plan.num_shards == 1  # filtered build has 1 row
    assert not isinstance(plan.catalog.table("build"), PartitionedTable)
    explicit = Planner(catalog, partitioning=2).plan(sql)
    assert isinstance(explicit.catalog.table("build"), PartitionedTable)


def test_held_partitioned_plan_rebuilds_after_invalidation():
    """The in-place-mutation escape hatch must reach the re-clustered
    copies a held partitioned plan pins, not just shared arrays."""
    catalog = scan_probe_catalog(300, 700, seed=18)
    query = scan_probe_query()
    plan = Planner(catalog, partitioning=4).plan(query, mode=ExecutionMode.COM)
    assert plan.execute().output_size > 0
    catalog.table("build").column("key")[:] = -1
    catalog.invalidate_indexes("build")
    assert plan.execute().output_size == 0
    # and back again: a second mutation re-clusters once more
    catalog.table("build").column("key")[:] = catalog.table(
        "driver"
    ).column("key")[0]
    catalog.invalidate_indexes()
    assert plan.execute().output_size > 0


def test_auto_and_explicit_equal_resolutions_do_not_share_plans(monkeypatch):
    """auto applies a post-selection floor explicit counts don't, so an
    equal resolved count must still be a distinct plan-cache entry."""
    monkeypatch.setattr("repro.planner.os.cpu_count", lambda: 8)
    catalog = scan_probe_catalog(64, AUTO_MIN_ROWS_PER_SHARD * 2, seed=19)
    session = QuerySession(catalog)
    sql = ("select * from driver, build "
           "where driver.key = build.key and build.payload = 7")
    auto_plan = session.plan(sql, partitioning="auto")
    explicit_plan = session.plan(sql, partitioning=2)
    assert auto_plan.num_shards == 1      # floor suppressed re-clustering
    assert explicit_plan.num_shards == 2  # explicit always applies
    assert auto_plan is not explicit_plan
    assert session.plan(sql, partitioning="auto") is auto_plan
    assert session.plan(sql, partitioning=2) is explicit_plan


def test_pushdown_keeps_user_partitioned_layout():
    """Unselected aliases of a user-prepartitioned catalog keep their
    layout (zero-copy rename) instead of being flattened."""
    from repro.storage import partitioned_catalog

    catalog = scan_probe_catalog(200, 500, seed=20)
    pre = partitioned_catalog(catalog, scan_probe_query(), 4)
    sql = "select * from driver, build where driver.key = build.key"
    plan = Planner(pre).plan(sql)
    alias_table = plan.catalog.table("build")
    assert isinstance(alias_table, PartitionedTable)
    assert alias_table.num_shards == 4
    # zero-copy: the alias shares the pre-partitioned table's arrays
    assert alias_table.column("key") is pre.table("build").column("key")
    result = plan.execute()
    assert result.shards_used == 4


def test_prepared_rebind_with_unshardable_binding_falls_back():
    """A binding that admits keys >= 2**53 must run on a merged index,
    not fail, matching the direct-execution fallback."""
    import numpy as np

    from repro.storage import Catalog

    catalog = Catalog()
    rng = np.random.default_rng(22)
    keys = rng.integers(0, 50, 500).astype(np.int64)
    group = np.zeros(500, dtype=np.int64)
    keys[0] = 2**53 + 10   # huge key, only in group 1
    group[0] = 1
    catalog.add_table("d", {"key": rng.integers(0, 50, 200)})
    catalog.add_table("b", {"key": keys, "grp": group})
    session = QuerySession(catalog, partitioning=2)
    statement = session.prepare(
        "select * from d, b where d.key = b.key and b.grp = ?"
    )
    first = statement.execute(0, collect_output=True)   # shardable subset
    assert first.ok
    second = statement.execute(1, collect_output=True)  # huge key admitted
    assert second.ok, second.error
    direct = session.execute(
        "select * from d, b where d.key = b.key and b.grp = 1",
        collect_output=True,
    )
    assert direct.ok
    assert second.result.output_size == direct.result.output_size


def test_exact_stats_cache_shared_across_shard_counts():
    from repro.core.stats import StatsCache

    catalog = scan_probe_catalog(2000, 4000, seed=24)
    cache = StatsCache()
    planner = Planner(catalog, stats_cache=cache)
    planner.plan(scan_probe_query(), partitioning="off")
    misses = cache.stats.misses
    planner.plan(scan_probe_query(), partitioning=4)
    assert cache.stats.misses == misses


def test_directly_held_partitioned_table_reclusters_on_invalidate():
    """Mutating a catalog-held PartitionedTable's own key column and
    acknowledging it must re-cluster the layout, not just drop caches."""
    import numpy as np

    from repro.storage import Catalog, PartitionedTable, Table

    base = Table("build", {"key": np.arange(64, dtype=np.int64) % 8,
                           "payload": np.arange(64, dtype=np.int64)})
    catalog = Catalog()
    catalog.add(PartitionedTable.from_table(base, "key", 4))
    assert catalog.hash_index("build", "key").contains(
        np.asarray([1000])
    ).tolist() == [False]
    catalog.table("build").column("key")[0] = 1000  # breaks shard layout
    catalog.invalidate_indexes("build")
    index = catalog.hash_index("build", "key")
    assert index.contains(np.asarray([1000])).tolist() == [True]
    # base-row frame is preserved through the re-cluster
    table = catalog.table("build")
    payload = table.gather(np.arange(64, dtype=np.int64))["payload"]
    assert sorted(payload.tolist()) == list(range(64))


def test_renamed_alias_refreshes_from_its_own_mutated_arrays():
    """A zero-copy alias of a mutated partitioned table must re-cluster
    from the shared (mutated) arrays and keep its alias name."""
    import numpy as np

    from repro.storage import Catalog, PartitionedTable, Table

    base = Table("build", {"key": np.arange(40, dtype=np.int64) % 5})
    parent = Catalog()
    parent.add(PartitionedTable.from_table(base, "key", 4))
    derived = parent.derived_with({})
    alias = parent.table("build").renamed("b2")
    derived.add(alias)
    parent.register_derived(derived)  # alias shares parent arrays
    derived.hash_index("b2", "key")
    parent.table("build").column("key")[0] = 777
    parent.invalidate_indexes("build")
    refreshed = derived.table("b2")
    assert refreshed.name == "b2"
    assert derived.hash_index("b2", "key").contains(
        np.asarray([777])
    ).tolist() == [True]


def test_refresh_is_lazy_for_untouched_catalogs():
    catalog = scan_probe_catalog(200, 500, seed=25)
    plan = Planner(catalog, partitioning=4).plan(
        scan_probe_query(), mode=ExecutionMode.COM
    )
    held = plan.catalog
    catalog.table("build").column("key")[:] = -1
    catalog.invalidate_indexes("build")
    # not re-clustered yet: the refresh is pending until next access
    assert held._pending_refresh
    assert plan.execute().output_size == 0  # access flushes + re-clusters
    assert not held._pending_refresh
