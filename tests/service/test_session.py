"""QuerySession: plan-cache semantics, invalidation, batching, speedup."""

import time

import numpy as np
import pytest

from repro import QuerySession
from repro.core.stats import QueryStats
from tests.helpers import (
    brute_force_join,
    make_running_example_stats,
    make_small_catalog,
    result_tuples,
)

SIX_RELATION_SQL = (
    "select * from R1, R2, R3, R4, R5, R6 "
    "where R1.B = R2.B and R2.C = R3.C and R2.D = R4.D "
    "and R1.E = R5.E and R5.F = R6.F"
)


@pytest.fixture
def session():
    return QuerySession(make_small_catalog())


def test_plan_cache_hit_and_miss(session):
    plan_a = session.plan(SIX_RELATION_SQL)
    assert session.plan_cache.stats.misses == 1
    plan_b = session.plan(SIX_RELATION_SQL)
    assert plan_b is plan_a
    assert session.plan_cache.stats.hits == 1
    # a structurally equal but textually different query also hits
    shuffled = (
        "SELECT * FROM R1, R2, R3, R4, R5, R6 "
        "WHERE R5.F = R6.F AND R1.E = R5.E AND R2.D = R4.D "
        "AND R2.C = R3.C AND R1.B = R2.B"
    )
    assert session.plan(shuffled) is plan_a
    assert session.plan_cache.stats.hits == 2


def test_from_order_plans_its_own_driver(session):
    forward = "select * from R1, R5 where R1.E = R5.E"
    reversed_from = "select * from R5, R1 where R1.E = R5.E"
    plan_forward = session.plan(forward, mode="COM")
    plan_reversed = session.plan(reversed_from, mode="COM")
    assert plan_forward.query.root == "R1"
    assert plan_reversed.query.root == "R5"
    assert session.plan_cache.stats.misses == 2


def test_different_options_miss(session):
    session.plan(SIX_RELATION_SQL, mode="auto")
    session.plan(SIX_RELATION_SQL, mode="COM")
    assert session.plan_cache.stats.misses == 2


def test_prebuilt_stats_bypass_cache(session):
    stats = make_running_example_stats()
    query = session.plan(SIX_RELATION_SQL).query  # rooted JoinQuery
    session.plan(query, stats=stats)
    session.plan(query, stats=stats)
    # only the initial SQL plan populated the cache
    assert len(session.plan_cache) == 1
    assert isinstance(stats, QueryStats)


def test_catalog_change_invalidates(session):
    plan_a = session.plan(SIX_RELATION_SQL)
    session.catalog.add_table("R6", {
        "F": np.array([0, 1, 2]), "K": np.array([5, 6, 7]),
    })
    plan_b = session.plan(SIX_RELATION_SQL)
    assert plan_b is not plan_a
    assert session.plan_cache.stats.misses == 2


def test_cached_plan_executes_identically(session):
    cold = session.execute(SIX_RELATION_SQL, collect_output=True)
    cached = session.execute(SIX_RELATION_SQL, collect_output=True)
    assert not cold.cache_hit and cached.cache_hit
    assert cold.ok and cached.ok
    rows_cold = result_tuples(cold.result, cold.plan.query)
    rows_cached = result_tuples(cached.result, cached.plan.query)
    assert rows_cold == rows_cached
    assert rows_cold == brute_force_join(session.catalog, cold.plan.query)


def test_cache_hit_at_least_10x_faster(session):
    """Acceptance: cached replan >= 10x faster than the cold plan."""
    t0 = time.perf_counter()
    session.plan(SIX_RELATION_SQL)
    cold = time.perf_counter() - t0
    hot = min(
        _timed(lambda: session.plan(SIX_RELATION_SQL)) for _ in range(5)
    )
    assert session.plan_cache.stats.hits >= 5
    assert cold / hot >= 10.0, f"cold {cold * 1e3:.2f}ms / hot {hot * 1e3:.2f}ms"


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_stats_cache_reused_across_drivers(session):
    session.plan(SIX_RELATION_SQL, driver="auto")
    misses = session.planner.stats_cache.stats.misses
    assert misses >= 6  # one rooting per relation
    session.plan_cache.clear()
    session.plan(SIX_RELATION_SQL, driver="auto")
    # replanning the same query re-derives nothing
    assert session.planner.stats_cache.stats.misses == misses
    assert session.planner.stats_cache.stats.hits >= 6


def test_execute_many_budgets_and_timing(session):
    small = "select * from R1, R5 where R1.E = R5.E"
    reports = session.execute_many(
        [SIX_RELATION_SQL, small], budgets=[10, 50_000_000],
    )
    assert reports[0].timed_out and not reports[0].ok
    assert reports[1].ok
    for report in reports:
        assert report.planning_seconds >= 0.0
        assert report.execution_seconds >= 0.0
        assert report.total_seconds == (
            report.planning_seconds + report.execution_seconds
        )


def test_execute_many_budget_arity_checked(session):
    with pytest.raises(ValueError, match="budgets"):
        session.execute_many(["select * from R1, R5 where R1.E = R5.E"],
                             budgets=[1, 2])


def test_execute_reports_errors_instead_of_raising(session):
    report = session.execute("select * from Nope, R1 where Nope.X = R1.B")
    assert not report.ok
    assert isinstance(report.error, Exception)


def test_cache_info_exposes_both_caches(session):
    session.plan(SIX_RELATION_SQL)
    info = session.cache_info()
    assert info["plan_cache"].misses == 1
    assert info["stats_cache"].misses >= 1


# ----------------------------------------------------------------------
# Optimizer resolution in the cache key (ISSUE 2)
# ----------------------------------------------------------------------


def test_auto_shares_cache_entry_with_resolved_algorithm(session):
    # 6 relations: "auto" resolves to "exhaustive", so the two requests
    # share one plan-cache entry.
    session.plan(SIX_RELATION_SQL, optimizer="auto")
    assert session.plan_cache.stats.misses == 1
    session.plan(SIX_RELATION_SQL, optimizer="exhaustive")
    assert session.plan_cache.stats.hits == 1
    assert len(session.plan_cache) == 1


def test_different_resolved_algorithms_key_separately(session):
    session.plan(SIX_RELATION_SQL, optimizer="exhaustive")
    session.plan(SIX_RELATION_SQL, optimizer="beam")
    assert session.plan_cache.stats.misses == 2
    assert len(session.plan_cache) == 2


def test_session_accepts_scaling_optimizers(session):
    for optimizer in ("idp", "beam", "auto"):
        plan = session.plan(SIX_RELATION_SQL, optimizer=optimizer)
        assert plan.query.is_valid_order(plan.order)


# ----------------------------------------------------------------------
# Concurrent session use (ISSUE 2: thread-safe shared caches)
# ----------------------------------------------------------------------


def test_concurrent_planning_on_one_session(session):
    import threading

    queries = [
        SIX_RELATION_SQL,
        "select * from R1, R2 where R1.B = R2.B",
        "select * from R1, R2, R3 where R1.B = R2.B and R2.C = R3.C",
        "select * from R1, R5, R6 where R1.E = R5.E and R5.F = R6.F",
    ]
    errors = []
    barrier = threading.Barrier(8)

    def worker(idx):
        try:
            barrier.wait()
            for i in range(12):
                plan = session.plan(queries[(idx + i) % len(queries)])
                assert plan is not None
        except Exception as exc:  # pragma: no cover - the regression
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors, errors
    stats = session.plan_cache.stats
    assert stats.lookups == 8 * 12
    # every distinct query planned at least once, the rest were hits
    assert len(session.plan_cache) == len(queries)


def test_scaling_knobs_are_part_of_the_cache_key():
    from tests.helpers import make_small_catalog

    catalog = make_small_catalog()
    a = QuerySession(catalog, beam_width=8)
    a.plan(SIX_RELATION_SQL, optimizer="beam")
    a.plan(SIX_RELATION_SQL, optimizer="beam")
    assert a.plan_cache.stats.hits == 1

    # retuning the knob on the planner must miss, not serve stale
    a.planner.beam_width = 32
    a.plan(SIX_RELATION_SQL, optimizer="beam")
    assert a.plan_cache.stats.misses == 2

    b = QuerySession(catalog, idp_block_size=4)
    b.plan(SIX_RELATION_SQL, optimizer="idp")
    b.planner.idp_block_size = 6
    b.plan(SIX_RELATION_SQL, optimizer="idp")
    assert b.plan_cache.stats.misses == 2


def test_execute_many_isolates_mid_batch_failures(session):
    """Regression: one bad query must never abort the rest of a batch."""
    small = "select * from R1, R5 where R1.E = R5.E"
    reports = session.execute_many([
        small,
        "select * frm broken",                        # parse error
        "select * from Nope, R1 where Nope.X = R1.B",  # unknown table
        SIX_RELATION_SQL,                              # budget overrun
        small,
    ], budgets=[50_000_000, 50_000_000, 50_000_000, 10, 50_000_000])
    assert [report.ok for report in reports] == \
        [True, False, False, False, True]
    assert reports[1].error is not None and not reports[1].timed_out
    assert reports[2].error is not None and not reports[2].timed_out
    assert reports[3].timed_out and reports[3].error is None
    # the good queries are full-fidelity reports, not placeholders
    assert reports[0].result is not None
    assert reports[4].cache_hit  # same query as reports[0]


def test_budget_overrun_in_plan_phase_reports_timeout(session):
    """A BudgetExceededError raised while the plan phase runs (e.g. a
    prepared statement's rebind executing) is a timeout, not an error."""
    from repro.engine import BudgetExceededError
    from repro.service.session import _reported_run

    def plan_phase():
        raise BudgetExceededError("COM", "R2", 100, 10)

    report = _reported_run("q", plan_phase, session=session)
    assert report.timed_out and report.error is None
    assert report.cache_stats is not None
