"""Prepared statements: plan once, execute many with new constants."""

import numpy as np
import pytest

from repro import QuerySession
from tests.helpers import make_small_catalog, result_tuples

TEMPLATE = ("select * from R1, R2, R3 "
            "where R1.B = R2.B and R2.C = R3.C and R2.D = ?")


@pytest.fixture
def session():
    return QuerySession(make_small_catalog())


def test_reexecution_matches_fresh_plans(session):
    stmt = session.prepare(TEMPLATE)
    for constant in range(6):
        prepared = stmt.execute(constant, collect_output=True)
        fresh = session.execute(
            TEMPLATE.replace("?", str(constant)), collect_output=True,
        )
        assert prepared.ok and fresh.ok
        rows_prepared = result_tuples(prepared.result, prepared.plan.query)
        rows_fresh = result_tuples(fresh.result, fresh.plan.query)
        assert rows_prepared == rows_fresh, constant
    assert stmt.executions == 6


def test_plans_only_once(session):
    stmt = session.prepare(TEMPLATE)
    first = stmt.execute(1)
    again = stmt.execute(2)
    assert not first.cache_hit       # first binding planned the template
    assert again.cache_hit           # later bindings reuse it
    assert again.plan is first.plan


def test_second_statement_over_same_sql_hits_plan_cache(session):
    first = session.prepare(TEMPLATE).execute(1)
    assert not first.cache_hit
    # a new statement's "fresh" template is served by the session's
    # plan cache and reported as a hit
    second = session.prepare(TEMPLATE).execute(1)
    assert second.cache_hit
    assert second.plan is first.plan


def test_catalog_change_forces_replan(session):
    stmt = session.prepare(TEMPLATE)
    first = stmt.execute(1)
    session.catalog.add_table("R3", {
        "C": np.array([0, 1, 2, 3]), "G": np.array([0, 0, 1, 1]),
    })
    replanned = stmt.execute(1)
    assert not replanned.cache_hit
    assert replanned.plan is not first.plan


def test_invalidate_drops_template(session):
    stmt = session.prepare(TEMPLATE)
    stmt.execute(1)
    stmt.invalidate()
    assert stmt._template is None
    # the replan is transparently served by the session's plan cache
    # (same SQL + binding), so it still reports as a cache hit
    report = stmt.execute(1)
    assert report.ok and report.cache_hit
    assert stmt._template is not None
    # clearing the session plan cache too makes the replan cold
    stmt.invalidate()
    session.plan_cache.clear()
    assert not stmt.execute(1).cache_hit


def test_binding_arity_enforced(session):
    stmt = session.prepare(TEMPLATE)
    assert stmt.num_params == 1
    with pytest.raises(ValueError):
        stmt.execute()
    with pytest.raises(ValueError):
        stmt.execute(1, 2)


def test_prepare_rejects_join_queries(session):
    with pytest.raises(TypeError):
        session.prepare(session.plan(
            "select * from R1, R2 where R1.B = R2.B").query)


def test_prepared_without_placeholders_is_allowed(session):
    stmt = session.prepare("select * from R1, R2 where R1.B = R2.B")
    assert stmt.num_params == 0
    report = stmt.execute(collect_output=True)
    assert report.ok
    fresh = session.execute("select * from R1, R2 where R1.B = R2.B",
                            collect_output=True)
    assert (result_tuples(report.result, report.plan.query)
            == result_tuples(fresh.result, fresh.plan.query))


def test_budget_overrun_reported(session):
    stmt = session.prepare(TEMPLATE)
    report = stmt.execute(1, max_intermediate_tuples=1)
    assert report.timed_out and not report.ok


def test_prepare_time_flat_output_is_honored(session):
    stmt = session.prepare(TEMPLATE, flat_output=False)
    report = stmt.execute(1)
    assert report.ok
    assert stmt._template_flat_output is False   # not clobbered by default
    # an explicit per-execution override still wins
    assert stmt.execute(1, flat_output=True).ok
    assert stmt._template_flat_output is True


def test_output_shape_change_replans_template(session):
    stmt = session.prepare(TEMPLATE)
    flat = stmt.execute(1, flat_output=True)
    factorized = stmt.execute(1, flat_output=False)
    assert not factorized.cache_hit      # shape change forces a replan
    assert stmt.execute(2, flat_output=False).cache_hit
    assert flat.ok and factorized.ok


def test_planning_failure_reported_not_raised(session):
    # the column only fails at push-down, after a successful parse
    stmt = session.prepare(
        "select * from R1, R2 where R1.B = R2.B and R2.NOPE = ?"
    )
    report = stmt.execute(1)
    assert not report.ok
    assert isinstance(report.error, Exception)
    assert "NOPE" in str(report.error)
    # later bindings keep reporting rather than raising mid-batch
    assert not stmt.execute(2).ok
