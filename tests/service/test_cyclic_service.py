"""Cyclic queries through the service layer, end to end.

The acceptance path: a cyclic query submitted through
:meth:`QuerySession.execute` (and the async front end) plans via the
joint tree+order search, caches under a key that carries the
tree-search knobs, executes on partitioned catalogs bit-identically to
:func:`execute_cyclic` on the merged catalog, and reports the residual
stage in its :class:`QueryReport`.
"""

import asyncio
import pickle

import numpy as np
import pytest

from repro.core import execute_cyclic, parse_query, spanning_tree_decomposition
from repro.service import QuerySession
from repro.service.async_service import AsyncQueryService
from repro.storage import Catalog

TRIANGLE = (
    "select * from A, B, C "
    "where A.x = B.x and B.y = C.y and C.z = A.z"
)


@pytest.fixture
def catalog():
    rng = np.random.default_rng(5)
    catalog = Catalog()
    catalog.add_table("A", {"x": rng.integers(0, 6, 30),
                            "z": rng.integers(0, 6, 30)})
    catalog.add_table("B", {"x": rng.integers(0, 6, 25),
                            "y": rng.integers(0, 6, 25)})
    catalog.add_table("C", {"y": rng.integers(0, 6, 20),
                            "z": rng.integers(0, 6, 20)})
    return catalog


def merged_reference(catalog, driver=None):
    plan = spanning_tree_decomposition(parse_query(TRIANGLE), driver=driver)
    size, _, rows = execute_cyclic(catalog, plan, collect_output=True)
    return size, sorted(zip(rows["A"].tolist(), rows["B"].tolist(),
                            rows["C"].tolist()))


def test_session_executes_and_caches_cyclic(catalog):
    session = QuerySession(catalog)
    expected_size, expected_rows = merged_reference(catalog)
    cold = session.execute(TRIANGLE, collect_output=True)
    assert cold.ok and not cold.cache_hit
    assert cold.result.output_size == expected_size
    rows = cold.result.output_rows
    assert sorted(zip(rows["A"].tolist(), rows["B"].tolist(),
                      rows["C"].tolist())) == expected_rows
    warm = session.execute(TRIANGLE)
    assert warm.ok and warm.cache_hit
    assert warm.result.output_size == expected_size


def test_report_carries_residual_fields(catalog):
    report = QuerySession(catalog).execute(TRIANGLE)
    assert report.ok
    assert len(report.residual_predicates) == 1
    counters = report.result.counters
    assert counters.residual_input_tuples > 0
    assert report.residual_selectivity == pytest.approx(
        report.result.output_size / counters.residual_input_tuples
    )
    # acyclic queries keep the defaults
    acyclic = QuerySession(catalog).execute(
        "select * from A, B where A.x = B.x"
    )
    assert acyclic.residual_predicates == ()
    assert acyclic.residual_selectivity == 1.0


def test_tree_search_is_part_of_the_cache_key(catalog):
    session = QuerySession(catalog)
    query = parse_query(TRIANGLE)
    joint_key = session.cache_key(query)
    greedy_key = session.cache_key(query, tree_search="greedy")
    assert joint_key != greedy_key
    session.execute(TRIANGLE)
    greedy = session.execute(TRIANGLE, tree_search="greedy")
    assert not greedy.cache_hit  # a different search must not share plans


def test_session_partitioned_cyclic_matches_merged(catalog):
    expected_size, expected_rows = merged_reference(catalog)
    session = QuerySession(catalog, partitioning=2)
    report = session.execute(TRIANGLE, collect_output=True)
    assert report.ok
    assert report.shards_used == 2
    assert report.result.output_size == expected_size
    rows = report.result.output_rows
    assert sorted(zip(rows["A"].tolist(), rows["B"].tolist(),
                      rows["C"].tolist())) == expected_rows


def test_prepared_cyclic_statement_rebinds(catalog):
    session = QuerySession(catalog)
    statement = session.prepare(TRIANGLE + " and A.x = ?")
    a, b, c = (catalog.table(name) for name in "ABC")

    def expected(literal):
        return sum(
            1
            for i in range(len(a)) if a.column("x")[i] == literal
            for j in range(len(b)) if a.column("x")[i] == b.column("x")[j]
            for k in range(len(c))
            if b.column("y")[j] == c.column("y")[k]
            and c.column("z")[k] == a.column("z")[i]
        )

    values = catalog.table("A").column("x")
    for literal in (int(values[0]), int(values[1])):
        report = statement.execute(literal)
        assert report.ok, report.error
        assert report.result.output_size == expected(literal)


def test_cyclic_plan_spec_pickles_with_residuals(catalog):
    session = QuerySession(catalog)
    plan = session.plan(TRIANGLE, mode="COM")
    spec = plan.to_spec(catalog.fingerprint())
    revived = pickle.loads(pickle.dumps(spec))
    assert revived.residuals == spec.residuals
    rehydrated = session.planner.rehydrate(revived, parse_query(TRIANGLE))
    assert rehydrated.fingerprint() == plan.fingerprint()


def test_async_service_serves_cyclic(catalog):
    expected_size, _ = merged_reference(catalog)
    session = QuerySession(catalog)

    async def main():
        async with AsyncQueryService(session) as service:
            reports = await service.execute_many([TRIANGLE] * 6)
            assert all(r.ok for r in reports)
            assert {r.result.output_size for r in reports} == {expected_size}
            assert all(len(r.residual_predicates) == 1 for r in reports)
            return service.stats()

    stats = asyncio.run(main())
    assert stats["completed"] == 6


def test_async_process_pool_plans_cyclic(catalog):
    """A worker process plans the cyclic query; the spec's residuals
    ship back and rehydrate into the session's plan cache."""
    expected_size, _ = merged_reference(catalog)
    session = QuerySession(catalog)

    async def main():
        async with AsyncQueryService(
            session, planning_workers=1, process_min_relations=2
        ) as service:
            report = await service.execute(TRIANGLE)
            assert report.ok, report.error
            assert report.result.output_size == expected_size
            return service.stats()

    stats = asyncio.run(main())
    assert stats["planned_in_process_pool"] == 1
