"""The example scripts must run end-to-end without errors."""

import subprocess
import sys
from pathlib import Path

import pytest

from tests.helpers import subprocess_env

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_at_least_three_examples_exist():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
        env=subprocess_env(),
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"
