"""Integration: optimizer decisions pay off in actual executions."""

import numpy as np
import pytest

from repro.core import exhaustive_optimal, greedy_order, stats_from_data
from repro.engine import execute
from repro.modes import ExecutionMode
from repro.workloads import generate_dataset, snowflake, specs_from_ranges


@pytest.fixture(scope="module")
def workload():
    query = snowflake(3, 1)
    specs = specs_from_ranges(query, (0.1, 0.7), (1.0, 6.0), seed=33)
    dataset = generate_dataset(query, 5000, specs, seed=33)
    stats = stats_from_data(dataset.catalog, query)
    return dataset, query, stats


def _measured_probes(dataset, query, order):
    result = execute(dataset.catalog, query, order, ExecutionMode.COM,
                     flat_output=False)
    return result.counters.hash_probes


def test_optimal_order_beats_random_orders(workload):
    dataset, query, stats = workload
    plan = exhaustive_optimal(query, stats)
    optimal_probes = _measured_probes(dataset, query, plan.order)
    rng = np.random.default_rng(1)
    for _ in range(8):
        order = query.random_order(rng)
        probes = _measured_probes(dataset, query, order)
        # Exact optimality holds for predicted costs; measured probes
        # track them closely, so allow a small tolerance.
        assert optimal_probes <= probes * 1.05


def test_survival_heuristic_close_to_optimal_in_practice(workload):
    dataset, query, stats = workload
    optimal = exhaustive_optimal(query, stats)
    survival = greedy_order(query, stats, "survival")
    opt_probes = _measured_probes(dataset, query, optimal.order)
    sur_probes = _measured_probes(dataset, query, survival.order)
    assert sur_probes <= opt_probes * 1.25


def test_predicted_ranking_correlates_with_measured(workload):
    """Orders ranked by predicted cost should rank near-identically by
    measured probes (the Figure 14 property, via rank correlation)."""
    from repro.core.costmodel import com_probes_per_join

    dataset, query, stats = workload
    rng = np.random.default_rng(5)
    orders = [query.random_order(rng) for _ in range(12)]
    predicted = [
        sum(com_probes_per_join(query, stats, order).values())
        for order in orders
    ]
    measured = [_measured_probes(dataset, query, order) for order in orders]
    pred_rank = np.argsort(np.argsort(predicted))
    meas_rank = np.argsort(np.argsort(measured))
    if np.std(pred_rank) == 0 or np.std(meas_rank) == 0:
        pytest.skip("degenerate ranking")
    rho = np.corrcoef(pred_rank, meas_rank)[0, 1]
    assert rho > 0.8
