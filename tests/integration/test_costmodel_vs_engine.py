"""Integration: the analytic cost model predicts the engine's probes.

On synthetic data with measured statistics, expected probe counts from
Eq. (1) / the STD formula must track the engine's actual counters
closely (they are exact in expectation; finite-sample noise only).
"""

import pytest

from repro.core import stats_from_data
from repro.core.costmodel import (
    com_probes_per_join,
    expected_output_size,
    std_probes_per_join,
)
from repro.engine import execute
from repro.modes import ExecutionMode
from repro.workloads import generate_dataset, snowflake, specs_from_ranges


@pytest.fixture(scope="module")
def dataset():
    query = snowflake(2, 2)
    specs = specs_from_ranges(query, (0.2, 0.6), (2.0, 5.0), seed=21)
    return generate_dataset(query, 6000, specs, seed=21), query


def test_com_probe_prediction(dataset):
    data, query = dataset
    stats = stats_from_data(data.catalog, query)
    order = list(query.non_root_relations)
    predicted = com_probes_per_join(query, stats, order)
    result = execute(data.catalog, query, order, ExecutionMode.COM,
                     flat_output=False)
    for relation in order:
        actual = result.counters.hash_probes_by_relation[relation]
        assert actual == pytest.approx(predicted[relation], rel=0.15), relation


def test_std_probe_prediction(dataset):
    data, query = dataset
    stats = stats_from_data(data.catalog, query)
    order = list(query.non_root_relations)
    predicted = std_probes_per_join(query, stats, order)
    result = execute(data.catalog, query, order, ExecutionMode.STD,
                     flat_output=False)
    for relation in order:
        actual = result.counters.hash_probes_by_relation[relation]
        assert actual == pytest.approx(predicted[relation], rel=0.15), relation


def test_output_size_prediction(dataset):
    data, query = dataset
    stats = stats_from_data(data.catalog, query)
    predicted = expected_output_size(query, stats)
    result = execute(data.catalog, query, mode=ExecutionMode.COM,
                     flat_output=False)
    assert result.output_size == pytest.approx(predicted, rel=0.2)


def test_sj_probe_prediction(dataset):
    """Phase-1 semi-join probes and phase-2 probes per the SJ model."""
    from repro.core import sj_plan_cost
    from repro.core.optimizer import optimize_sj

    data, query = dataset
    stats = stats_from_data(data.catalog, query)
    plan = optimize_sj(query, stats, factorized=True)
    predicted = sj_plan_cost(query, stats, plan.order, factorized=True,
                             flat_output=False,
                             child_orders=plan.child_orders)
    result = execute(data.catalog, query, plan.order, ExecutionMode.SJ_COM,
                     flat_output=False, child_orders=plan.child_orders)
    assert result.counters.semijoin_probes == pytest.approx(
        predicted.semijoin_probes, rel=0.15
    )
    assert result.counters.hash_probes == pytest.approx(
        predicted.hash_probes, rel=0.2
    )


def test_bvp_probe_prediction(dataset):
    """BVP probe counts track the Section 3.5 model with the measured
    bitvector false-positive rate."""
    from repro.core import bvp_plan_cost
    from repro.engine.bitvector import BitvectorFilter

    data, query = dataset
    stats = stats_from_data(data.catalog, query)
    order = list(query.non_root_relations)
    # Measure a representative eps from one relation's filter.
    first = order[0]
    edge = query.edge_to(first)
    keys = data.catalog.table(first).column(edge.child_attr)
    eps = BitvectorFilter(keys).fill_fraction
    predicted = bvp_plan_cost(query, stats, order, eps=eps, factorized=True,
                              flat_output=False)
    result = execute(data.catalog, query, order, ExecutionMode.BVP_COM,
                     flat_output=False)
    assert result.counters.bitvector_probes == pytest.approx(
        predicted.bitvector_probes, rel=0.25
    )
    assert result.counters.hash_probes == pytest.approx(
        predicted.hash_probes, rel=0.25
    )
