"""Unit tests for the ExecutionMode enum."""

import pytest

from repro.modes import ExecutionMode


def test_all_modes_count_and_order():
    modes = ExecutionMode.all_modes()
    assert len(modes) == 6
    assert modes[0] is ExecutionMode.STD


def test_flags():
    assert not ExecutionMode.STD.factorized
    assert ExecutionMode.COM.factorized
    assert ExecutionMode.BVP_COM.factorized
    assert ExecutionMode.SJ_COM.factorized
    assert ExecutionMode.BVP_STD.uses_bitvectors
    assert not ExecutionMode.SJ_STD.uses_bitvectors
    assert ExecutionMode.SJ_STD.uses_semijoin
    assert not ExecutionMode.BVP_COM.uses_semijoin


def test_string_round_trip():
    for mode in ExecutionMode.all_modes():
        assert ExecutionMode(str(mode)) is mode
    assert ExecutionMode("SJ+COM") is ExecutionMode.SJ_COM


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        ExecutionMode("FANCY")
