"""The repo-invariant linter: green on the repo, loud on violations.

Each rule is exercised twice — once against the real tree (must hold)
and once against a synthetic violation written into a temp tree (must
fire), so the linter can neither rot into false positives nor silently
stop catching the pattern it exists for.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

from tests.helpers import subprocess_env

REPO = Path(__file__).resolve().parents[2]
SCRIPT = REPO / "tools" / "check_invariants.py"


def load_linter(repo_root):
    """Import the linter module rebased onto ``repo_root``."""
    spec = importlib.util.spec_from_file_location(
        "check_invariants_under_test", SCRIPT
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.REPO = Path(repo_root)
    module.SRC = Path(repo_root) / "src" / "repro"
    return module


@pytest.fixture()
def synthetic_repo(tmp_path):
    """A minimal tree the linter accepts, ready to be corrupted."""
    src = tmp_path / "src" / "repro"
    for sub in ("engine", "storage", "core", "analysis"):
        (src / sub).mkdir(parents=True)
        (src / sub / "__init__.py").write_text("")
    (src / "__init__.py").write_text("")
    (src / "engine" / "kernels.py").write_text(
        "class VectorizedKernels:\n"
        "    def lookup(self, index, keys):\n"
        "        return index\n"
        "class InterpretedKernels:\n"
        "    def lookup(self, index, keys):\n"
        "        return index\n"
    )
    (src / "planner.py").write_text(
        "class Planner:\n"
        "    def plan(self, query, mode='auto'):\n"
        "        return None\n"
    )
    (tmp_path / "README.md").write_text(
        "## Planner / session knobs\n\n"
        "| knob |\n|---|\n| `mode` |\n\n## Next\n"
    )
    return tmp_path


def run_all(module):
    return [finding for check in module.CHECKS for finding in check()]


def test_linter_green_on_this_repo():
    result = subprocess.run(
        [sys.executable, str(SCRIPT)],
        cwd=REPO, capture_output=True, text=True, env=subprocess_env(),
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "invariants hold" in result.stdout


def test_synthetic_repo_is_green(synthetic_repo):
    assert run_all(load_linter(synthetic_repo)) == []


def test_raw_key_eq_fires(synthetic_repo):
    path = synthetic_repo / "src" / "repro" / "engine" / "probe.py"
    path.write_text(
        "def find(build_key, probe):\n"
        "    return build_key == probe\n"
    )
    rules = [f.rule for f in run_all(load_linter(synthetic_repo))]
    assert rules == ["RAW_KEY_EQ"]


def test_raw_key_eq_nan_idiom_allowed(synthetic_repo):
    path = synthetic_repo / "src" / "repro" / "engine" / "probe.py"
    path.write_text(
        "def is_nan(key):\n"
        "    return key != key\n"
    )
    assert run_all(load_linter(synthetic_repo)) == []


def test_unlocked_cache_mutation_fires_on_foreign_access(synthetic_repo):
    path = synthetic_repo / "src" / "repro" / "core" / "peek.py"
    path.write_text(
        "def peek(cache):\n"
        "    return list(cache._entries)\n"
    )
    rules = [f.rule for f in run_all(load_linter(synthetic_repo))]
    assert rules == ["UNLOCKED_CACHE_MUTATION"]


def test_unlocked_cache_mutation_fires_without_lock(synthetic_repo):
    path = synthetic_repo / "src" / "repro" / "core" / "cachelike.py"
    path.write_text(
        "class Cache:\n"
        "    def __init__(self):\n"
        "        self._entries = {}\n"
        "    def size_unlocked(self):\n"
        "        return len(self._entries)\n"
        "    def size_locked(self):\n"
        "        with self._lock:\n"
        "            return len(self._entries)\n"
    )
    findings = run_all(load_linter(synthetic_repo))
    assert [f.rule for f in findings] == ["UNLOCKED_CACHE_MUTATION"]
    assert "size_unlocked" in findings[0].message


def test_unsorted_fingerprint_iter_fires(synthetic_repo):
    path = synthetic_repo / "src" / "repro" / "core" / "digest.py"
    path.write_text(
        "def fingerprint(mapping):\n"
        "    return tuple(mapping.items())\n"
    )
    rules = [f.rule for f in run_all(load_linter(synthetic_repo))]
    assert rules == ["UNSORTED_FINGERPRINT_ITER"]


def test_unsorted_fingerprint_iter_accepts_sorted(synthetic_repo):
    path = synthetic_repo / "src" / "repro" / "core" / "digest.py"
    path.write_text(
        "def fingerprint(mapping, tags):\n"
        "    keep = {t for t in tags}\n"  # membership only: fine
        "    return tuple(sorted(mapping.items())), keep\n"
    )
    assert run_all(load_linter(synthetic_repo)) == []


def test_unsorted_fingerprint_iter_fires_on_iterated_set(synthetic_repo):
    path = synthetic_repo / "src" / "repro" / "core" / "digest.py"
    path.write_text(
        "def cache_key(tags):\n"
        "    return tuple({t for t in tags})\n"
    )
    rules = [f.rule for f in run_all(load_linter(synthetic_repo))]
    assert rules == ["UNSORTED_FINGERPRINT_ITER"]


def test_kernel_surface_fires_on_missing_method(synthetic_repo):
    path = synthetic_repo / "src" / "repro" / "engine" / "kernels.py"
    path.write_text(
        "class VectorizedKernels:\n"
        "    def lookup(self, index, keys):\n"
        "        return index\n"
        "    def gather(self, rows):\n"
        "        return rows\n"
        "class InterpretedKernels:\n"
        "    def lookup(self, index, keys):\n"
        "        return index\n"
    )
    findings = run_all(load_linter(synthetic_repo))
    assert [f.rule for f in findings] == ["KERNEL_SURFACE"]
    assert "gather" in findings[0].message


def test_kernel_surface_fires_on_counter_mismatch(synthetic_repo):
    path = synthetic_repo / "src" / "repro" / "engine" / "kernels.py"
    path.write_text(
        "class VectorizedKernels:\n"
        "    def lookup(self, index, keys):\n"
        "        self.counters.probes += 1\n"
        "class InterpretedKernels:\n"
        "    def lookup(self, index, keys):\n"
        "        return index\n"
    )
    findings = run_all(load_linter(synthetic_repo))
    assert [f.rule for f in findings] == ["KERNEL_SURFACE"]
    assert "counter updates differ" in findings[0].message


def test_readme_knob_table_fires_on_undocumented_knob(synthetic_repo):
    path = synthetic_repo / "src" / "repro" / "planner.py"
    path.write_text(
        "class Planner:\n"
        "    def plan(self, query, mode='auto', shiny='off'):\n"
        "        return None\n"
    )
    findings = run_all(load_linter(synthetic_repo))
    assert [f.rule for f in findings] == ["README_KNOB_TABLE"]
    assert "`shiny`" in findings[0].message
