"""Shared test helpers: the paper's running example, reference evaluators.

Importable as ``tests.helpers`` from every test package (``tests`` is a
regular package), replacing the former ``from ..conftest import ...``
pattern that broke collection when test directories were not packages.
Fixtures built on these factories live in ``tests/conftest.py``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.core import EdgeStats, JoinEdge, JoinQuery, QueryStats
from repro.storage import Catalog

#: repository src/ directory (the package lives in src-layout)
SRC_DIR = Path(__file__).resolve().parents[1] / "src"


def subprocess_env():
    """A child-process environment that can ``import repro``.

    Prepends the repository ``src/`` directory to ``PYTHONPATH`` so
    subprocess-based tests (examples, CLI) work both against an
    installed package and a bare checkout.
    """
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{SRC_DIR}{os.pathsep}{existing}" if existing else str(SRC_DIR)
    )
    return env

# ----------------------------------------------------------------------
# The paper's running example (Figure 1): R1 drives; R2 and R5 join on
# R1's attributes; R3, R4 join on R2's; R6 joins on R5's.
# ----------------------------------------------------------------------

RUNNING_EXAMPLE_M = {"R2": 0.3, "R3": 0.4, "R4": 0.5, "R5": 0.6, "R6": 0.7}
RUNNING_EXAMPLE_FO = {"R2": 3.0, "R3": 2.0, "R4": 4.0, "R5": 5.0, "R6": 2.0}


def make_running_example_query():
    return JoinQuery(
        "R1",
        [
            JoinEdge("R1", "R2", "B", "B"),
            JoinEdge("R2", "R3", "C", "C"),
            JoinEdge("R2", "R4", "D", "D"),
            JoinEdge("R1", "R5", "E", "E"),
            JoinEdge("R5", "R6", "F", "F"),
        ],
    )


def make_running_example_stats():
    return QueryStats(
        1000.0,
        {
            rel: EdgeStats(RUNNING_EXAMPLE_M[rel], RUNNING_EXAMPLE_FO[rel])
            for rel in RUNNING_EXAMPLE_M
        },
        relation_sizes={
            "R1": 1000, "R2": 800, "R3": 600,
            "R4": 500, "R5": 700, "R6": 400,
        },
    )


# ----------------------------------------------------------------------
# Small concrete data for engine tests
# ----------------------------------------------------------------------


def make_small_catalog(seed=42, driver_rows=60):
    """A random instantiation of the running example's schema."""
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    catalog.add_table("R1", {
        "A": np.arange(driver_rows),
        "B": rng.integers(0, 8, driver_rows),
        "E": rng.integers(0, 6, driver_rows),
    })
    catalog.add_table("R2", {
        "B": rng.integers(0, 10, 50),
        "C": rng.integers(0, 7, 50),
        "D": rng.integers(0, 9, 50),
    })
    catalog.add_table("R3", {"C": rng.integers(0, 9, 40), "G": rng.integers(0, 5, 40)})
    catalog.add_table("R4", {"D": rng.integers(0, 11, 30), "H": rng.integers(0, 5, 30)})
    catalog.add_table("R5", {"E": rng.integers(0, 8, 35), "F": rng.integers(0, 6, 35)})
    catalog.add_table("R6", {"F": rng.integers(0, 8, 25), "K": rng.integers(0, 5, 25)})
    return catalog


# ----------------------------------------------------------------------
# Brute-force reference evaluator
# ----------------------------------------------------------------------


def brute_force_join(catalog, query):
    """Evaluate the join naively; returns sorted row-index tuples.

    Tuple component order follows ``query.relations``.  Exponential —
    only for small test inputs.
    """
    tables = {rel: catalog.table(rel) for rel in query.relations}
    rows = [{query.root: i} for i in range(len(tables[query.root]))]
    for edge in query.edges:
        parent_col = tables[edge.parent].column(edge.parent_attr)
        child_col = tables[edge.child].column(edge.child_attr)
        new_rows = []
        for partial in rows:
            value = parent_col[partial[edge.parent]]
            for j in np.nonzero(child_col == value)[0]:
                extended = dict(partial)
                extended[edge.child] = int(j)
                new_rows.append(extended)
        rows = new_rows
    return sorted(
        tuple(partial[rel] for rel in query.relations) for partial in rows
    )


def result_tuples(result, query):
    """Sorted row-index tuples from an ExecutionResult with output."""
    if result.output_rows is None:
        raise AssertionError("execute() was not asked to collect output")
    columns = [result.output_rows[rel].tolist() for rel in query.relations]
    return sorted(zip(*columns)) if columns and len(columns[0]) else []
