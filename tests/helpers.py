"""Shared test helpers: the paper's running example, reference evaluators.

Importable as ``tests.helpers`` from every test package (``tests`` is a
regular package), replacing the former ``from ..conftest import ...``
pattern that broke collection when test directories were not packages.
Fixtures built on these factories live in ``tests/conftest.py``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.core import EdgeStats, JoinEdge, JoinQuery, QueryStats
from repro.storage import Catalog

#: repository src/ directory (the package lives in src-layout)
SRC_DIR = Path(__file__).resolve().parents[1] / "src"


def subprocess_env():
    """A child-process environment that can ``import repro``.

    Prepends the repository ``src/`` directory to ``PYTHONPATH`` so
    subprocess-based tests (examples, CLI) work both against an
    installed package and a bare checkout.
    """
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{SRC_DIR}{os.pathsep}{existing}" if existing else str(SRC_DIR)
    )
    return env

# ----------------------------------------------------------------------
# The paper's running example (Figure 1): R1 drives; R2 and R5 join on
# R1's attributes; R3, R4 join on R2's; R6 joins on R5's.
# ----------------------------------------------------------------------

RUNNING_EXAMPLE_M = {"R2": 0.3, "R3": 0.4, "R4": 0.5, "R5": 0.6, "R6": 0.7}
RUNNING_EXAMPLE_FO = {"R2": 3.0, "R3": 2.0, "R4": 4.0, "R5": 5.0, "R6": 2.0}


def make_running_example_query():
    return JoinQuery(
        "R1",
        [
            JoinEdge("R1", "R2", "B", "B"),
            JoinEdge("R2", "R3", "C", "C"),
            JoinEdge("R2", "R4", "D", "D"),
            JoinEdge("R1", "R5", "E", "E"),
            JoinEdge("R5", "R6", "F", "F"),
        ],
    )


def make_running_example_stats():
    return QueryStats(
        1000.0,
        {
            rel: EdgeStats(RUNNING_EXAMPLE_M[rel], RUNNING_EXAMPLE_FO[rel])
            for rel in RUNNING_EXAMPLE_M
        },
        relation_sizes={
            "R1": 1000, "R2": 800, "R3": 600,
            "R4": 500, "R5": 700, "R6": 400,
        },
    )


# ----------------------------------------------------------------------
# Small concrete data for engine tests
# ----------------------------------------------------------------------


def make_small_catalog(seed=42, driver_rows=60):
    """A random instantiation of the running example's schema."""
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    catalog.add_table("R1", {
        "A": np.arange(driver_rows),
        "B": rng.integers(0, 8, driver_rows),
        "E": rng.integers(0, 6, driver_rows),
    })
    catalog.add_table("R2", {
        "B": rng.integers(0, 10, 50),
        "C": rng.integers(0, 7, 50),
        "D": rng.integers(0, 9, 50),
    })
    catalog.add_table("R3", {"C": rng.integers(0, 9, 40), "G": rng.integers(0, 5, 40)})
    catalog.add_table("R4", {"D": rng.integers(0, 11, 30), "H": rng.integers(0, 5, 30)})
    catalog.add_table("R5", {"E": rng.integers(0, 8, 35), "F": rng.integers(0, 6, 35)})
    catalog.add_table("R6", {"F": rng.integers(0, 8, 25), "K": rng.integers(0, 5, 25)})
    return catalog


# ----------------------------------------------------------------------
# Fault injection: a catalog whose statistics lie
# ----------------------------------------------------------------------


class _LyingIndex:
    """Index proxy that lies to statistics derivation only.

    ``probe_stats`` — the seam :func:`repro.core.stats.stats_from_data`
    measures edge selectivities through — reports counts scaled by the
    corruption factor.  Everything execution touches (``lookup``,
    ``iter_groups``, ``key_dtype``) and the max-frequency statistic the
    pessimistic bounds are built on (``max_group_size``) delegate
    truthfully, so plans built from the lies still compute correct
    results and the guaranteed bounds stay sound — which is exactly the
    failure mode the robustness knob is for.
    """

    def __init__(self, index, factor):
        self._index = index
        self._factor = float(factor)

    def __getattr__(self, name):
        return getattr(self._index, name)

    def probe_stats(self, keys):
        matched, total = self._index.probe_stats(keys)
        scaled_matched = int(round(matched * self._factor))
        if matched > 0:
            # a lie must not claim an empty edge (the planner would
            # prune it outright instead of mis-ordering it)
            scaled_matched = max(1, scaled_matched)
        scaled_matched = min(len(keys), scaled_matched)
        scaled_total = max(scaled_matched, int(round(total * self._factor)))
        return scaled_matched, scaled_total


class StatsCorruptingCatalog:
    """Catalog wrapper whose derived statistics are off by factor ``k``.

    ``factors`` maps relation name -> multiplicative corruption of the
    edge measurements statistics derivation makes against that
    relation's indexes: ``k < 1`` makes the relation look *more*
    selective than it is (the classic underestimate that explodes at
    runtime), ``k > 1`` less.  Only planning beliefs are corrupted —
    execution probes the truthful indexes underneath, so results stay
    bit-identical to the clean catalog's.

    ``fingerprint`` is salted with the corruption so plan/stats caches
    never alias corrupted entries with clean ones, and ``derived_with``
    re-wraps so the corruption survives the planner's partitioning
    rewrite.  Works for :class:`~repro.core.JoinQuery` planning (parsed
    queries with selections build their own pushed-down catalog).
    """

    def __init__(self, catalog, factors):
        self._catalog = catalog
        self._factors = {name: float(k) for name, k in factors.items()}
        # one proxy per (relation, attribute): the interpreted kernels
        # key per-index view caches on object identity
        self._proxies = {}

    def __getattr__(self, name):
        return getattr(self._catalog, name)

    def __contains__(self, name):
        return name in self._catalog

    def hash_index(self, table_name, attribute):
        factor = self._factors.get(table_name, 1.0)
        if factor == 1.0:
            return self._catalog.hash_index(table_name, attribute)
        key = (table_name, attribute)
        proxy = self._proxies.get(key)
        if proxy is None:
            proxy = _LyingIndex(
                self._catalog.hash_index(table_name, attribute), factor
            )
            self._proxies[key] = proxy
        return proxy

    def fingerprint(self):
        salt = ",".join(
            f"{name}:{factor}"
            for name, factor in sorted(self._factors.items())
        )
        return f"{self._catalog.fingerprint()}|corrupted[{salt}]"

    def derived_with(self, replacements):
        return StatsCorruptingCatalog(
            self._catalog.derived_with(replacements), self._factors
        )


# ----------------------------------------------------------------------
# Brute-force reference evaluator
# ----------------------------------------------------------------------


def brute_force_join(catalog, query):
    """Evaluate the join naively; returns sorted row-index tuples.

    Tuple component order follows ``query.relations``.  Exponential —
    only for small test inputs.
    """
    tables = {rel: catalog.table(rel) for rel in query.relations}
    rows = [{query.root: i} for i in range(len(tables[query.root]))]
    for edge in query.edges:
        parent_col = tables[edge.parent].column(edge.parent_attr)
        child_col = tables[edge.child].column(edge.child_attr)
        new_rows = []
        for partial in rows:
            value = parent_col[partial[edge.parent]]
            for j in np.nonzero(child_col == value)[0]:
                extended = dict(partial)
                extended[edge.child] = int(j)
                new_rows.append(extended)
        rows = new_rows
    return sorted(
        tuple(partial[rel] for rel in query.relations) for partial in rows
    )


def result_tuples(result, query):
    """Sorted row-index tuples from an ExecutionResult with output."""
    if result.output_rows is None:
        raise AssertionError("execute() was not asked to collect output")
    columns = [result.output_rows[rel].tolist() for rel in query.relations]
    return sorted(zip(*columns)) if columns and len(columns[0]) else []


class KillingWorkerPool:
    """Fault-injection wrapper: a worker pool that murders chosen workers.

    Behaves exactly like :class:`repro.distributed.WorkerPool` except
    that the first time a fragment is bound for a worker in ``victims``,
    the worker process is killed (a poison task calls ``os._exit``)
    before the fragment is submitted — so the fragment future surfaces
    ``BrokenProcessPool`` exactly as a mid-query death would.  Install
    via ``session._worker_pool_factory`` (partially applied over
    ``victims``) to exercise the sibling-retry path deterministically.
    """

    def __init__(self, *args, victims=(), **kwargs):
        from repro.distributed import WorkerPool

        self._pool = WorkerPool(*args, **kwargs)
        self.victims = set(victims)
        self.kills = 0

    def __getattr__(self, name):
        return getattr(self._pool, name)

    def _submit(self, worker, fn, *args):
        from repro.distributed.workerpool import _execute_fragment

        if fn is _execute_fragment and worker in self.victims:
            self.victims.discard(worker)
            self.kills += 1
            executor = self._pool._executor(worker)
            # the poison pill: the worker process exits mid-"task", so
            # every later future on this executor breaks
            executor.submit(os._exit, 13)
        return self._pool._submit(worker, fn, *args)

    def run(self, *args, **kwargs):
        # delegate explicitly so WorkerPool.run's internal _submit calls
        # dispatch through this wrapper, not the wrapped pool
        from repro.distributed import WorkerPool

        return WorkerPool.run.__get__(self)(*args, **kwargs)


def killing_pool_factory(victims, **overrides):
    """A ``session._worker_pool_factory`` that kills ``victims`` once.

    ``overrides`` are forced onto the pool's constructor kwargs (e.g.
    ``max_retries=0`` to pin the no-retry failure path).
    """

    def factory(*args, **kwargs):
        kwargs.update(overrides)
        return KillingWorkerPool(*args, victims=victims, **kwargs)

    return factory
