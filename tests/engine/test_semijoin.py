"""Tests for phase-1 semi-join full reduction."""

import numpy as np
import pytest

from repro.core import JoinEdge, JoinQuery
from repro.engine import full_reduction
from repro.storage import Catalog

from tests.helpers import brute_force_join, make_running_example_query, make_small_catalog


@pytest.fixture
def chain_catalog():
    catalog = Catalog()
    catalog.add_table("A", {"k": [1, 2, 3, 4]})
    catalog.add_table("B", {"k": [1, 1, 3, 9], "j": [10, 11, 12, 13]})
    catalog.add_table("C", {"j": [10, 12, 99]})
    return catalog


@pytest.fixture
def chain_query():
    return JoinQuery("A", [
        JoinEdge("A", "B", "k", "k"),
        JoinEdge("B", "C", "j", "j"),
    ])


def test_leaves_never_reduced(chain_catalog, chain_query):
    result = full_reduction(chain_query, chain_catalog)
    assert len(result.rows("C")) == 3


def test_internal_nodes_partially_reduced(chain_catalog, chain_query):
    result = full_reduction(chain_query, chain_catalog)
    # B rows with j in C: rows 0 (j=10) and 2 (j=12).
    assert sorted(result.rows("B").tolist()) == [0, 2]


def test_driver_fully_reduced(chain_catalog, chain_query):
    result = full_reduction(chain_query, chain_catalog)
    # Surviving B keys: 1 (row 0) and 3 (row 2) -> A rows 0 and 2.
    assert sorted(result.rows("A").tolist()) == [0, 2]


def test_driver_reduction_matches_brute_force():
    """Every surviving driver row contributes to the output; every
    removed one does not (the Yannakakis guarantee)."""
    catalog = make_small_catalog(seed=11)
    query = make_running_example_query()
    result = full_reduction(query, catalog)
    expected = brute_force_join(catalog, query)
    contributing = sorted({t[0] for t in expected})
    assert sorted(result.rows("R1").tolist()) == contributing


def test_probe_counts(chain_catalog, chain_query):
    result = full_reduction(chain_query, chain_catalog)
    # B probes C with all 4 rows; A probes (reduced) B with all 4 rows.
    assert result.semijoin_probes == 8


def test_child_order_changes_probes_not_result():
    catalog = make_small_catalog(seed=13)
    query = make_running_example_query()
    a = full_reduction(query, catalog,
                       child_orders={"R1": ["R2", "R5"]})
    b = full_reduction(query, catalog,
                       child_orders={"R1": ["R5", "R2"]})
    assert sorted(a.rows("R1").tolist()) == sorted(b.rows("R1").tolist())
    for rel in ("R2", "R3", "R4", "R5", "R6"):
        assert sorted(a.rows(rel).tolist()) == sorted(b.rows(rel).tolist())


def test_invalid_child_order_rejected(chain_catalog, chain_query):
    with pytest.raises(ValueError, match="child order"):
        full_reduction(chain_query, chain_catalog,
                       child_orders={"B": ["X"]})


def test_reduced_index_covers_reduced_rows_only(chain_catalog, chain_query):
    result = full_reduction(chain_query, chain_catalog)
    index = result.reduced_index(chain_catalog, "B", "k")
    assert len(index) == len(result.rows("B"))
    # Key 9 (dangling B row) must be gone.
    assert not index.contains(np.asarray([9])).any()


def test_reduction_ratio(chain_catalog, chain_query):
    result = full_reduction(chain_query, chain_catalog)
    assert result.reduction_ratio("B", 4) == pytest.approx(0.5)
    assert result.reduction_ratio("C", 3) == pytest.approx(1.0)
    assert result.reduction_ratio("X", 0) == 1.0


def test_empty_survivor_set():
    catalog = Catalog()
    catalog.add_table("A", {"k": [1, 2]})
    catalog.add_table("B", {"k": [7, 8]})
    query = JoinQuery("A", [JoinEdge("A", "B", "k", "k")])
    result = full_reduction(query, catalog)
    assert len(result.rows("A")) == 0
