"""Unit tests for the execution-kernel layer.

The interpreted kernels are the vectorized path's correctness oracle,
so every primitive is checked for bit-identical agreement — including
the dtype edge cases the exact-key semantics exist for (NaN keys,
float/int mixes, huge ints at and beyond 2**53).
"""

import numpy as np
import pytest

from repro.core.cyclic import exact_equal
from repro.engine.bitvector import BitvectorFilter
from repro.engine.kernels import (
    EXECUTION_CHOICES,
    INTERPRETED,
    REPRO_EXECUTION,
    VECTORIZED,
    InterpretedKernels,
    get_kernels,
    resolve_execution,
)
from repro.storage.hashindex import HashIndex
from repro.storage.partition import PartitionedTable, ShardedHashIndex
from repro.storage.table import Table


# ----------------------------------------------------------------------
# Knob resolution
# ----------------------------------------------------------------------


def test_resolve_execution_defaults(monkeypatch):
    monkeypatch.delenv(REPRO_EXECUTION, raising=False)
    assert resolve_execution() == "vectorized"
    assert resolve_execution("auto") == "vectorized"
    assert resolve_execution("vectorized") == "vectorized"
    assert resolve_execution("interpreted") == "interpreted"


def test_resolve_execution_env_overrides_only_auto(monkeypatch):
    monkeypatch.setenv(REPRO_EXECUTION, "interpreted")
    assert resolve_execution("auto") == "interpreted"
    assert resolve_execution(None) == "interpreted"
    # explicit choices are never overridden
    assert resolve_execution("vectorized") == "vectorized"


def test_resolve_execution_rejects_invalid(monkeypatch):
    with pytest.raises(ValueError, match="execution must be one of"):
        resolve_execution("simd")
    monkeypatch.setenv(REPRO_EXECUTION, "gpu")
    with pytest.raises(ValueError, match=REPRO_EXECUTION):
        resolve_execution("auto")


def test_get_kernels_singletons(monkeypatch):
    monkeypatch.delenv(REPRO_EXECUTION, raising=False)
    assert get_kernels("vectorized") is VECTORIZED
    assert get_kernels("interpreted") is INTERPRETED
    assert get_kernels() is VECTORIZED
    assert get_kernels("auto") is VECTORIZED
    assert set(EXECUTION_CHOICES) == {"vectorized", "interpreted", "auto"}


# ----------------------------------------------------------------------
# Probe agreement on hash indexes
# ----------------------------------------------------------------------


def _assert_lookup_agreement(index, probes):
    vect = VECTORIZED.lookup(index, probes)
    interp = INTERPRETED.lookup(index, probes)
    assert vect.counts.tolist() == interp.counts.tolist()
    assert vect.matched_mask.tolist() == interp.matched_mask.tolist()
    assert vect.total_matches() == interp.total_matches()
    assert vect.matching_rows().tolist() == interp.matching_rows().tolist()
    assert VECTORIZED.contains(index, probes).tolist() == \
        INTERPRETED.contains(index, probes).tolist()


def test_lookup_agreement_int_keys():
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 25, 300)
    probes = rng.integers(-5, 30, 200)
    for index in (HashIndex(keys), ShardedHashIndex(keys, 4)):
        _assert_lookup_agreement(index, probes)


def test_lookup_agreement_float_keys_with_nan():
    keys = np.asarray([1.5, 2.0, np.nan, 2.0, -0.0, np.nan, 7.25])
    probes = np.asarray([2.0, np.nan, 1.5, 0.0, 3.0, 7.25, np.nan])
    index = HashIndex(keys)
    _assert_lookup_agreement(index, probes)
    # NaN probes miss on both paths
    assert not VECTORIZED.contains(index, np.asarray([np.nan]))[0]
    assert not INTERPRETED.contains(index, np.asarray([np.nan]))[0]


def test_lookup_agreement_int_build_float_probes_beyond_2_53():
    # 2**53 and 2**53 + 1 collide after a float64 upcast; both paths
    # must agree on which build group the collided probe resolves to
    # (searchsorted's side="left" first position).
    keys = np.asarray([2 ** 53, 2 ** 53 + 1, 10, 11], dtype=np.int64)
    probes = np.asarray([float(2 ** 53), 10.0, 10.5, float(2 ** 53 + 2)])
    _assert_lookup_agreement(HashIndex(keys), probes)


def test_lookup_agreement_float_build_int_probes():
    keys = np.asarray([1.0, 2.5, 3.0, np.nan])
    probes = np.asarray([1, 2, 3, 4], dtype=np.int64)
    _assert_lookup_agreement(HashIndex(keys), probes)


def test_lookup_agreement_bool_keys():
    keys = np.asarray([True, False, True, True])
    probes = np.asarray([True, False])
    _assert_lookup_agreement(HashIndex(keys), probes)


def test_lookup_agreement_empty_index_and_empty_probes():
    empty = HashIndex(np.asarray([], dtype=np.int64))
    _assert_lookup_agreement(empty, np.asarray([1, 2], dtype=np.int64))
    full = HashIndex(np.asarray([1, 2], dtype=np.int64))
    _assert_lookup_agreement(full, np.asarray([], dtype=np.int64))


def test_interpreted_view_cached_per_dtype():
    kernels = InterpretedKernels()
    keys = np.asarray([1, 2, 2, 3], dtype=np.int64)
    index = HashIndex(keys)
    kernels.lookup(index, np.asarray([1, 2], dtype=np.int64))
    kernels.lookup(index, np.asarray([1.0, 2.0]))
    views = kernels._group_views[index]
    assert set(views) == {np.dtype(np.int64).str, np.dtype(np.float64).str}


# ----------------------------------------------------------------------
# Bitvector probes
# ----------------------------------------------------------------------


def test_bitvector_agreement():
    rng = np.random.default_rng(1)
    filt = BitvectorFilter(rng.integers(0, 1000, 200))
    probes = rng.integers(0, 2000, 500)
    assert VECTORIZED.bitvector_contains(filt, probes).tolist() == \
        INTERPRETED.bitvector_contains(filt, probes).tolist()


# ----------------------------------------------------------------------
# Expansion primitives
# ----------------------------------------------------------------------


def test_repeat_rows_agreement():
    values = np.asarray([5, 7, 9, 11], dtype=np.int64)
    counts = np.asarray([0, 3, 1, 2], dtype=np.int64)
    expected = np.repeat(values, counts)
    assert VECTORIZED.repeat_rows(values, counts).tolist() == \
        expected.tolist()
    got = INTERPRETED.repeat_rows(values, counts)
    assert got.tolist() == expected.tolist()
    assert got.dtype == expected.dtype


def test_concat_ranges_agreement():
    starts = np.asarray([4, 0, 10], dtype=np.int64)
    lengths = np.asarray([2, 0, 3], dtype=np.int64)
    expected = [4, 5, 10, 11, 12]
    assert VECTORIZED.concat_ranges(starts, lengths).tolist() == expected
    assert INTERPRETED.concat_ranges(starts, lengths).tolist() == expected


# ----------------------------------------------------------------------
# Base-row-id remapping and gather
# ----------------------------------------------------------------------


def test_original_rows_and_gather_agreement():
    rng = np.random.default_rng(2)
    values = rng.integers(0, 50, 64)
    payload = np.arange(64, dtype=np.int64)
    plain = Table("t", {"k": values, "p": payload})
    sharded = PartitionedTable.from_table(plain, "k", 4)
    rows = rng.integers(0, 64, 40).astype(np.int64)
    for table in (plain, sharded):
        assert VECTORIZED.original_rows(table, rows).tolist() == \
            INTERPRETED.original_rows(table, rows).tolist()
        for attr in ("k", "p"):
            vect = VECTORIZED.gather(table, attr, rows)
            interp = INTERPRETED.gather(table, attr, rows)
            assert vect.tolist() == interp.tolist()
            assert vect.dtype == interp.dtype
    # gather on a partitioned table takes *base* ids: values must match
    # the plain table's column ordering regardless of re-clustering
    assert VECTORIZED.gather(sharded, "p", rows).tolist() == \
        payload[rows].tolist()


def test_base_row_ids_identity_marker():
    plain = Table("t", {"k": np.asarray([3, 1, 2], dtype=np.int64)})
    assert plain.base_row_ids() is None
    sharded = PartitionedTable.from_table(plain, "k", 2)
    base = sharded.base_row_ids()
    assert sorted(base.tolist()) == [0, 1, 2]


# ----------------------------------------------------------------------
# Residual equality
# ----------------------------------------------------------------------


@pytest.mark.parametrize("a, b", [
    (np.asarray([1, 2, 3], dtype=np.int64),
     np.asarray([1, 4, 3], dtype=np.int64)),
    (np.asarray([1.0, np.nan, 2.5]), np.asarray([1.0, np.nan, 2.5])),
    (np.asarray([2 ** 53, 2 ** 53 + 1], dtype=np.int64),
     np.asarray([float(2 ** 53), float(2 ** 53)])),
    (np.asarray([True, False]), np.asarray([1, 0], dtype=np.int64)),
    (np.asarray([1, 2], dtype=np.int64), np.asarray([1.5, 2.0])),
])
def test_equal_mask_agreement(a, b):
    expected = exact_equal(a, b)
    assert VECTORIZED.equal_mask(a, b).tolist() == expected.tolist()
    assert INTERPRETED.equal_mask(a, b).tolist() == expected.tolist()
