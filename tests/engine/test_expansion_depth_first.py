"""Depth-first expansion must agree with the breadth-first fast path."""

import numpy as np

from repro.core import JoinEdge, JoinQuery
from repro.engine import FactorizedResult, execute
from repro.modes import ExecutionMode

from tests.helpers import make_running_example_query, make_small_catalog


def test_depth_first_matches_breadth_first_small():
    query = JoinQuery("A", [
        JoinEdge("A", "B", "k", "k"),
        JoinEdge("B", "C", "j", "j"),
        JoinEdge("A", "D", "h", "h"),
    ])
    result = FactorizedResult(query, np.asarray([0, 1]))
    result.add_node("B", rows=np.asarray([10, 11, 12]),
                    parent_ptr=np.asarray([0, 0, 1]))
    result.add_node("C", rows=np.asarray([20, 21]),
                    parent_ptr=np.asarray([0, 2]))
    result.add_node("D", rows=np.asarray([30, 31]),
                    parent_ptr=np.asarray([0, 1]))
    result.propagate_deaths()
    bf = result.expand_all()
    bf_tuples = sorted(zip(*(bf[rel].tolist() for rel in result.joined)))
    df_tuples = sorted(
        tuple(row[rel] for rel in result.joined)
        for row in result.expand_depth_first()
    )
    assert df_tuples == bf_tuples
    assert len(df_tuples) == result.count_rows()


def test_depth_first_on_engine_output():
    catalog = make_small_catalog(seed=3, driver_rows=25)
    query = make_running_example_query()
    result = execute(catalog, query, mode=ExecutionMode.COM,
                     flat_output=False)
    bf = result.factorized.expand_all()
    bf_tuples = sorted(zip(*(bf[rel].tolist() for rel in query.relations)))
    df_tuples = sorted(
        tuple(row[rel] for rel in query.relations)
        for row in result.factorized.expand_depth_first()
    )
    assert df_tuples == bf_tuples


def test_depth_first_empty_result():
    query = JoinQuery("A", [JoinEdge("A", "B", "k", "k")])
    result = FactorizedResult(query, np.asarray([0, 1]))
    result.add_node("B", rows=np.empty(0, dtype=np.int64),
                    parent_ptr=np.empty(0, dtype=np.int64))
    result.propagate_deaths()
    assert list(result.expand_depth_first()) == []


def test_depth_first_is_lazy():
    """The generator yields without materializing everything."""
    catalog = make_small_catalog(seed=5, driver_rows=40)
    query = make_running_example_query()
    result = execute(catalog, query, mode=ExecutionMode.COM,
                     flat_output=False)
    generator = result.factorized.expand_depth_first()
    first = next(generator)
    assert set(first) == set(query.relations)
