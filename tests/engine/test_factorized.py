"""Tests for the factorized intermediate representation."""

import numpy as np
import pytest

from repro.core import JoinEdge, JoinQuery
from repro.engine import FactorizedResult


@pytest.fixture
def chain_query():
    return JoinQuery("A", [
        JoinEdge("A", "B", "k", "k"),
        JoinEdge("B", "C", "j", "j"),
    ])


def make_two_level(chain_query):
    """A: 3 entries; B: entries under A0 (x2) and A2 (x1); C under B."""
    result = FactorizedResult(chain_query, np.asarray([0, 1, 2]))
    result.add_node("B", rows=np.asarray([10, 11, 12]),
                    parent_ptr=np.asarray([0, 0, 2]))
    return result


class TestStructure:
    def test_driver_node(self, chain_query):
        result = FactorizedResult(chain_query, np.asarray([5, 6]))
        node = result.node("A")
        assert node.rows.tolist() == [5, 6]
        assert node.parent_ptr.tolist() == [-1, -1]
        assert node.num_alive == 2

    def test_unjoined_relation_error(self, chain_query):
        result = FactorizedResult(chain_query, np.asarray([0]))
        with pytest.raises(KeyError, match="not been joined"):
            result.node("B")

    def test_double_join_rejected(self, chain_query):
        result = make_two_level(chain_query)
        with pytest.raises(ValueError, match="already joined"):
            result.add_node("B", np.asarray([1]), np.asarray([0]))

    def test_total_entries(self, chain_query):
        result = make_two_level(chain_query)
        assert result.total_entries() == 6


class TestDeathPropagation:
    def test_upward_kill(self, chain_query):
        """A parent entry with no alive children in a joined child node
        dies (A1 never produced a B entry, so dies after the B join)."""
        result = make_two_level(chain_query)
        result.propagate_deaths()
        assert result.node("A").alive.tolist() == [True, False, True]

    def test_downward_kill(self, chain_query):
        result = make_two_level(chain_query)
        result.node("A").alive[0] = False
        result.propagate_deaths()
        # B entries 0, 1 hang under dead A0.
        assert result.node("B").alive.tolist() == [False, False, True]

    def test_cascade_through_levels(self, chain_query):
        result = make_two_level(chain_query)
        result.add_node("C", rows=np.asarray([100]),
                        parent_ptr=np.asarray([2]))
        result.propagate_deaths()
        # Only the chain A2 -> B(12) -> C(100) is fully alive; B entries
        # 10, 11 die (no C children), so A0 dies too.
        assert result.node("A").alive.tolist() == [False, False, True]
        assert result.node("B").alive.tolist() == [False, False, True]
        assert result.node("C").alive.tolist() == [True]


class TestCountingAndExpansion:
    def test_count_rows_matches_expand(self, chain_query):
        result = make_two_level(chain_query)
        result.add_node("C", rows=np.asarray([100, 101, 102]),
                        parent_ptr=np.asarray([0, 0, 2]))
        result.propagate_deaths()
        flat = result.expand_all()
        assert result.count_rows() == len(flat["A"])
        # A0 x {B10 x (C100, C101)} plus A2 x B12 x C102 = 3 tuples.
        assert result.count_rows() == 3

    def test_expand_rows_content(self, chain_query):
        result = make_two_level(chain_query)
        result.add_node("C", rows=np.asarray([100, 101, 102]),
                        parent_ptr=np.asarray([0, 0, 2]))
        result.propagate_deaths()
        flat = result.expand_all()
        tuples = sorted(zip(flat["A"].tolist(), flat["B"].tolist(),
                            flat["C"].tolist()))
        assert tuples == [(0, 10, 100), (0, 10, 101), (2, 12, 102)]

    def test_expand_batching_consistent(self, chain_query):
        result = make_two_level(chain_query)
        result.add_node("C", rows=np.asarray([100, 101, 102]),
                        parent_ptr=np.asarray([0, 0, 2]))
        result.propagate_deaths()
        full = result.expand_all()
        for batch_entries in (1, 2, 3):
            batches = list(result.expand(batch_entries=batch_entries))
            combined = {
                rel: np.concatenate([b[rel] for b in batches])
                for rel in full
            }
            for rel in full:
                assert sorted(combined[rel].tolist()) == sorted(
                    full[rel].tolist()
                )

    def test_expand_max_rows_bounds_batches(self, chain_query):
        result = make_two_level(chain_query)
        result.add_node("C", rows=np.asarray([100, 101, 102]),
                        parent_ptr=np.asarray([0, 0, 2]))
        result.propagate_deaths()
        batches = list(result.expand(max_rows=2))
        assert sum(len(b["A"]) for b in batches) == result.count_rows()
        for batch in batches:
            assert len(batch["A"]) <= 2

    def test_empty_result(self, chain_query):
        result = FactorizedResult(chain_query, np.asarray([0, 1]))
        result.add_node("B", rows=np.empty(0, dtype=np.int64),
                        parent_ptr=np.empty(0, dtype=np.int64))
        result.propagate_deaths()
        assert result.count_rows() == 0
        assert list(result.expand()) == []
        flat = result.expand_all()
        assert len(flat["A"]) == 0

    def test_count_without_propagation_still_correct(self, chain_query):
        """Counting weights dead subtrees as zero, so an un-propagated
        alive mask yields the same count."""
        result = make_two_level(chain_query)
        result.add_node("C", rows=np.asarray([100]),
                        parent_ptr=np.asarray([2]))
        unpropagated = result.count_rows()
        result.propagate_deaths()
        assert result.count_rows() == unpropagated
