"""Executor tests: correctness, counters, budget, output handling."""

import numpy as np
import pytest

from repro.core import JoinEdge, JoinQuery
from repro.engine import BudgetExceededError, execute
from repro.modes import ExecutionMode
from repro.storage import Catalog

from tests.helpers import (
    brute_force_join,
    make_running_example_query,
    make_small_catalog,
    result_tuples,
)

ORDERS = [
    ["R2", "R3", "R4", "R5", "R6"],
    ["R5", "R2", "R6", "R4", "R3"],
    ["R2", "R5", "R3", "R6", "R4"],
]


@pytest.fixture(scope="module")
def catalog():
    return make_small_catalog()


@pytest.fixture(scope="module")
def query():
    return make_running_example_query()


@pytest.fixture(scope="module")
def expected(catalog, query):
    return brute_force_join(catalog, query)


class TestCorrectness:
    @pytest.mark.parametrize("mode", ExecutionMode.all_modes())
    def test_matches_brute_force(self, catalog, query, expected, mode):
        result = execute(catalog, query, ORDERS[0], mode,
                         flat_output=True, collect_output=True)
        assert result_tuples(result, query) == expected
        assert result.output_size == len(expected)

    @pytest.mark.parametrize("order", ORDERS)
    def test_order_independent_results(self, catalog, query, expected, order):
        for mode in (ExecutionMode.COM, ExecutionMode.BVP_STD,
                     ExecutionMode.SJ_COM):
            result = execute(catalog, query, order, mode,
                             flat_output=True, collect_output=True)
            assert result_tuples(result, query) == expected

    def test_default_order_is_declaration_order(self, catalog, query):
        result = execute(catalog, query, mode=ExecutionMode.COM,
                         flat_output=False)
        assert result.order == query.non_root_relations

    def test_invalid_order_rejected(self, catalog, query):
        with pytest.raises(ValueError, match="invalid join order"):
            execute(catalog, query, ["R3", "R2", "R4", "R5", "R6"],
                    ExecutionMode.COM)

    def test_factorized_output_counts_without_expansion(
        self, catalog, query, expected
    ):
        result = execute(catalog, query, ORDERS[0], ExecutionMode.COM,
                         flat_output=False)
        assert result.output_size == len(expected)
        assert result.output_rows is None
        assert result.factorized is not None
        flat = result.factorized.expand_all()
        assert len(flat["R1"]) == len(expected)


class TestCounters:
    def test_com_fewer_probes_than_std(self, catalog, query):
        std = execute(catalog, query, ORDERS[0], ExecutionMode.STD,
                      flat_output=False)
        com = execute(catalog, query, ORDERS[0], ExecutionMode.COM,
                      flat_output=False)
        assert com.counters.hash_probes < std.counters.hash_probes

    def test_first_probe_count_equals_driver_size(self, catalog, query):
        result = execute(catalog, query, ORDERS[0], ExecutionMode.COM,
                         flat_output=False)
        assert result.counters.hash_probes_by_relation["R2"] == len(
            catalog.table("R1")
        )

    def test_bvp_counts_bitvector_probes(self, catalog, query):
        result = execute(catalog, query, ORDERS[0], ExecutionMode.BVP_COM,
                         flat_output=False)
        assert result.counters.bitvector_probes > 0
        base = execute(catalog, query, ORDERS[0], ExecutionMode.COM,
                       flat_output=False)
        assert (result.counters.hash_probes
                <= base.counters.hash_probes)

    def test_sj_counts_semijoin_probes(self, catalog, query):
        result = execute(catalog, query, ORDERS[0], ExecutionMode.SJ_STD,
                         flat_output=False)
        assert result.counters.semijoin_probes > 0

    def test_std_generation_counts_intermediates(self, catalog, query):
        result = execute(catalog, query, ORDERS[0], ExecutionMode.STD,
                         flat_output=False)
        assert result.counters.tuples_generated >= result.output_size

    def test_weighted_cost_formula(self, catalog, query):
        result = execute(catalog, query, ORDERS[0], ExecutionMode.SJ_COM,
                         flat_output=True)
        counters = result.counters
        expected = (
            counters.hash_probes
            + 0.5 * counters.bitvector_probes
            + 0.5 * counters.semijoin_probes
            + counters.tuples_generated / 14.0
        )
        assert result.weighted_cost() == pytest.approx(expected)

    def test_com_expansion_counted_in_generation(self, catalog, query,
                                                 expected):
        flat = execute(catalog, query, ORDERS[0], ExecutionMode.COM,
                       flat_output=True)
        fact = execute(catalog, query, ORDERS[0], ExecutionMode.COM,
                       flat_output=False)
        assert (
            flat.counters.tuples_generated
            - fact.counters.tuples_generated
        ) == len(expected)


class TestBudget:
    def test_std_budget_exceeded(self, catalog, query):
        with pytest.raises(BudgetExceededError) as excinfo:
            execute(catalog, query, ORDERS[0], ExecutionMode.STD,
                    max_intermediate_tuples=100)
        assert excinfo.value.budget == 100
        assert excinfo.value.size > 100

    def test_com_expansion_budget(self, catalog, query, expected):
        assert len(expected) > 50
        with pytest.raises(BudgetExceededError):
            execute(catalog, query, ORDERS[0], ExecutionMode.COM,
                    flat_output=True, max_intermediate_tuples=50)

    def test_factorized_output_within_budget(self, catalog, query):
        # Without expansion the factorized result is tiny.
        result = execute(catalog, query, ORDERS[0], ExecutionMode.COM,
                         flat_output=False, max_intermediate_tuples=5000)
        assert result.output_size > 5000 // 2


class TestEdgeCases:
    def test_empty_driver(self):
        catalog = Catalog()
        catalog.add_table("A", {"k": np.empty(0, dtype=np.int64)})
        catalog.add_table("B", {"k": [1, 2]})
        query = JoinQuery("A", [JoinEdge("A", "B", "k", "k")])
        for mode in ExecutionMode.all_modes():
            result = execute(catalog, query, ["B"], mode,
                             flat_output=True, collect_output=True)
            assert result.output_size == 0

    def test_no_matches_anywhere(self):
        catalog = Catalog()
        catalog.add_table("A", {"k": [1, 2, 3]})
        catalog.add_table("B", {"k": [9, 9]})
        query = JoinQuery("A", [JoinEdge("A", "B", "k", "k")])
        for mode in ExecutionMode.all_modes():
            result = execute(catalog, query, ["B"], mode,
                             flat_output=True, collect_output=True)
            assert result.output_size == 0

    def test_single_join_cross_like_fanout(self):
        catalog = Catalog()
        catalog.add_table("A", {"k": [7, 7]})
        catalog.add_table("B", {"k": [7, 7, 7]})
        query = JoinQuery("A", [JoinEdge("A", "B", "k", "k")])
        for mode in ExecutionMode.all_modes():
            result = execute(catalog, query, ["B"], mode,
                             flat_output=True, collect_output=True)
            assert result.output_size == 6

    def test_mode_accepts_string(self, catalog, query):
        result = execute(catalog, query, ORDERS[0], "SJ+COM",
                         flat_output=False)
        assert result.mode is ExecutionMode.SJ_COM
