"""Tests for the bitvector filter."""

import numpy as np
import pytest

from repro.engine import BitvectorFilter, default_num_bits


def test_no_false_negatives():
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 10_000, 500)
    bv = BitvectorFilter(keys)
    assert bv.might_contain(keys).all()


def test_false_positive_rate_bounded():
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 50_000, 2_000)
    bv = BitvectorFilter(keys)
    absent = np.arange(100_000, 120_000)
    fpr = bv.measured_false_positive_rate(absent)
    # With 16 bits/key the fill fraction stays under ~6%.
    assert fpr < 0.15
    assert abs(fpr - bv.fill_fraction) < 0.05


def test_default_num_bits_power_of_two():
    for n in (0, 1, 7, 100, 5000):
        bits = default_num_bits(n)
        assert bits & (bits - 1) == 0
        assert bits >= 64


def test_explicit_num_bits_validated():
    with pytest.raises(ValueError, match="power of two"):
        BitvectorFilter([1, 2, 3], num_bits=100)


def test_small_filter_has_false_positives():
    """An undersized table saturates — correctness is unaffected, cost
    model's eps just grows (Section 3.5)."""
    keys = np.arange(1000)
    bv = BitvectorFilter(keys, num_bits=64)
    assert bv.fill_fraction > 0.9


def test_empty_build_side():
    bv = BitvectorFilter(np.empty(0, dtype=np.int64))
    assert not bv.might_contain(np.asarray([1, 2, 3])).any()
    assert bv.fill_fraction == 0.0
    assert bv.measured_false_positive_rate(np.asarray([5])) == 0.0
    assert bv.measured_false_positive_rate(np.empty(0, dtype=np.int64)) == 0.0


def test_empty_probe_batch():
    bv = BitvectorFilter([1, 2])
    assert bv.might_contain(np.empty(0, dtype=np.int64)).tolist() == []


def test_negative_keys_supported():
    keys = np.asarray([-5, -1, 3])
    bv = BitvectorFilter(keys)
    assert bv.might_contain(keys).all()
