"""Unit tests for EdgeStats / QueryStats and stats-from-data."""

import numpy as np
import pytest

from repro.core import EdgeStats, JoinEdge, JoinQuery, QueryStats, stats_from_data
from repro.storage import Catalog


def test_edge_stats_selectivity():
    stats = EdgeStats(m=0.5, fo=4.0)
    assert stats.selectivity == 2.0


def test_edge_stats_validation():
    with pytest.raises(ValueError, match="match probability"):
        EdgeStats(m=1.5, fo=1.0)
    with pytest.raises(ValueError, match="fanout"):
        EdgeStats(m=0.5, fo=-1.0)


def test_edge_stats_scaled_clamps():
    stats = EdgeStats(m=0.8, fo=2.0)
    assert stats.scaled(2.0).m == 1.0
    assert stats.scaled(0.5).m == pytest.approx(0.4)
    assert stats.scaled(0.5).fo == 2.0


def test_query_stats_accessors(running_example_stats):
    st = running_example_stats
    assert st.m("R2") == 0.3
    assert st.fo("R5") == 5.0
    assert st.selectivity("R2") == pytest.approx(0.9)
    assert st.probe_cost("R2") == 1.0
    assert st.relation_size("R3") == 600
    with pytest.raises(KeyError, match="no statistics"):
        st.m("R9")


def test_relation_size_defaults_to_driver():
    st = QueryStats(500, {"X": EdgeStats(0.5, 2.0)})
    assert st.relation_size("X") == 500.0


def test_with_edge_replaces_single_relation(running_example_stats):
    st2 = running_example_stats.with_edge("R2", EdgeStats(0.9, 1.0))
    assert st2.m("R2") == 0.9
    assert running_example_stats.m("R2") == 0.3
    assert st2.relation_size("R3") == 600  # sizes carried over


def test_perturbed_stays_in_bounds(running_example_stats):
    rng = np.random.default_rng(0)
    perturbed = running_example_stats.perturbed(0.95, rng)
    for rel in ("R2", "R3", "R4", "R5", "R6"):
        assert 0.0 < perturbed.m(rel) <= 1.0
        assert perturbed.fo(rel) >= 1.0


def test_negative_driver_size_rejected():
    with pytest.raises(ValueError, match="driver_size"):
        QueryStats(-1, {})


def test_stats_from_data_exact():
    catalog = Catalog()
    # R: 4 tuples; keys 1,1,2,5. S has key 1 twice and key 2 once.
    catalog.add_table("R", {"k": [1, 1, 2, 5]})
    catalog.add_table("S", {"k": [1, 1, 2, 9], "p": [0, 1, 2, 3]})
    query = JoinQuery("R", [JoinEdge("R", "S", "k", "k")])
    stats = stats_from_data(catalog, query)
    # 3 of 4 R tuples match; matched tuples find (2 + 2 + 1)/3 matches.
    assert stats.m("S") == pytest.approx(0.75)
    assert stats.fo("S") == pytest.approx(5.0 / 3.0)
    assert stats.driver_size == 4
    assert stats.relation_size("S") == 4


def test_stats_from_data_no_matches():
    catalog = Catalog()
    catalog.add_table("R", {"k": [1, 2]})
    catalog.add_table("S", {"k": [7, 8]})
    query = JoinQuery("R", [JoinEdge("R", "S", "k", "k")])
    stats = stats_from_data(catalog, query)
    assert stats.m("S") == 0.0
    assert stats.fo("S") == 1.0


def test_query_signature_ignores_edge_declaration_order():
    from repro.core import query_signature

    a = JoinQuery("R1", [
        JoinEdge("R1", "R2", "B", "B"), JoinEdge("R1", "R3", "E", "E"),
    ])
    b = JoinQuery("R1", [
        JoinEdge("R1", "R3", "E", "E"), JoinEdge("R1", "R2", "B", "B"),
    ])
    assert query_signature(a) == query_signature(b)
    # different rooting is a different signature
    assert query_signature(a) != query_signature(a.rerooted("R2"))
