"""Tests for cyclic-query handling via spanning trees."""

import numpy as np
import pytest

from repro.core import (
    execute_cyclic,
    parse_query,
    spanning_tree_decomposition,
)
from repro.modes import ExecutionMode
from repro.storage import Catalog

TRIANGLE = (
    "select * from A, B, C "
    "where A.x = B.x and B.y = C.y and C.z = A.z"
)


@pytest.fixture
def triangle_catalog():
    rng = np.random.default_rng(5)
    catalog = Catalog()
    catalog.add_table("A", {"x": rng.integers(0, 6, 30),
                            "z": rng.integers(0, 6, 30)})
    catalog.add_table("B", {"x": rng.integers(0, 6, 25),
                            "y": rng.integers(0, 6, 25)})
    catalog.add_table("C", {"y": rng.integers(0, 6, 20),
                            "z": rng.integers(0, 6, 20)})
    return catalog


def brute_force_triangle(catalog):
    a = catalog.table("A")
    b = catalog.table("B")
    c = catalog.table("C")
    results = []
    for i in range(len(a)):
        for j in range(len(b)):
            if a.column("x")[i] != b.column("x")[j]:
                continue
            for k in range(len(c)):
                if (b.column("y")[j] == c.column("y")[k]
                        and c.column("z")[k] == a.column("z")[i]):
                    results.append((i, j, k))
    return sorted(results)


def test_decomposition_extracts_one_residual():
    parsed = parse_query(TRIANGLE)
    plan = spanning_tree_decomposition(parsed, driver="A")
    assert plan.is_cyclic
    assert len(plan.residuals) == 1
    assert plan.query.num_relations == 3
    assert plan.query.root == "A"


def test_acyclic_input_has_no_residuals():
    parsed = parse_query("select * from A, B where A.x = B.x")
    plan = spanning_tree_decomposition(parsed)
    assert not plan.is_cyclic
    assert plan.query.num_relations == 2


def test_stats_hint_keeps_selective_edges():
    parsed = parse_query(TRIANGLE)
    # Make the A-B edge the least selective: it should become residual.
    hint = {
        ("A", "x", "B", "x"): 10.0,
        ("B", "y", "C", "y"): 0.1,
        ("C", "z", "A", "z"): 0.2,
    }
    plan = spanning_tree_decomposition(parsed, driver="A", stats_hint=hint)
    residual = plan.residuals[0]
    assert {residual.relation_a, residual.relation_b} == {"A", "B"}


@pytest.mark.parametrize("mode", ExecutionMode.all_modes())
def test_cyclic_execution_matches_brute_force(triangle_catalog, mode):
    parsed = parse_query(TRIANGLE)
    plan = spanning_tree_decomposition(parsed, driver="A")
    expected = brute_force_triangle(triangle_catalog)
    size, result, rows = execute_cyclic(
        triangle_catalog, plan, mode=mode, collect_output=True
    )
    assert size == len(expected)
    got = sorted(zip(rows["A"].tolist(), rows["B"].tolist(),
                     rows["C"].tolist()))
    assert got == expected


def test_cyclic_execution_counts_without_collection(triangle_catalog):
    parsed = parse_query(TRIANGLE)
    plan = spanning_tree_decomposition(parsed, driver="A")
    expected = brute_force_triangle(triangle_catalog)
    size, result, rows = execute_cyclic(
        triangle_catalog, plan, mode=ExecutionMode.COM, collect_output=False
    )
    assert size == len(expected)
    assert rows is None


def test_acyclic_through_execute_cyclic(triangle_catalog):
    parsed = parse_query("select * from A, B where A.x = B.x")
    plan = spanning_tree_decomposition(parsed, driver="A")
    size, result, rows = execute_cyclic(
        triangle_catalog, plan, mode=ExecutionMode.STD, collect_output=True
    )
    a = triangle_catalog.table("A").column("x")
    b = triangle_catalog.table("B").column("x")
    expected = sum(int((b == value).sum()) for value in a.tolist())
    assert size == expected


def test_disconnected_rejected():
    parsed = parse_query("select * from A, B, C where A.x = B.x")
    with pytest.raises(ValueError, match="disconnected"):
        spanning_tree_decomposition(parsed)


def test_larger_cycle_two_residuals():
    parsed = parse_query(
        "select * from A, B, C, D "
        "where A.x = B.x and B.y = C.y and C.z = D.z and D.w = A.w "
        "and B.v = D.v"
    )
    plan = spanning_tree_decomposition(parsed, driver="A")
    assert len(plan.residuals) == 2
    assert plan.query.num_relations == 4
