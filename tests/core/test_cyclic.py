"""Tests for cyclic-query handling via spanning trees."""

import numpy as np
import pytest

from repro.core import (
    decompose,
    enumerate_spanning_trees,
    exact_equal,
    execute_cyclic,
    parse_query,
    residual_filter_cost,
    spanning_tree_decomposition,
    tree_query_from_residuals,
)
from repro.core.costmodel import CostWeights
from repro.modes import ExecutionMode
from repro.storage import Catalog
from repro.storage.partition import PartitionedTable

TRIANGLE = (
    "select * from A, B, C "
    "where A.x = B.x and B.y = C.y and C.z = A.z"
)


@pytest.fixture
def triangle_catalog():
    rng = np.random.default_rng(5)
    catalog = Catalog()
    catalog.add_table("A", {"x": rng.integers(0, 6, 30),
                            "z": rng.integers(0, 6, 30)})
    catalog.add_table("B", {"x": rng.integers(0, 6, 25),
                            "y": rng.integers(0, 6, 25)})
    catalog.add_table("C", {"y": rng.integers(0, 6, 20),
                            "z": rng.integers(0, 6, 20)})
    return catalog


def brute_force_triangle(catalog):
    a = catalog.table("A")
    b = catalog.table("B")
    c = catalog.table("C")
    results = []
    for i in range(len(a)):
        for j in range(len(b)):
            if a.column("x")[i] != b.column("x")[j]:
                continue
            for k in range(len(c)):
                if (b.column("y")[j] == c.column("y")[k]
                        and c.column("z")[k] == a.column("z")[i]):
                    results.append((i, j, k))
    return sorted(results)


def test_decomposition_extracts_one_residual():
    parsed = parse_query(TRIANGLE)
    plan = spanning_tree_decomposition(parsed, driver="A")
    assert plan.is_cyclic
    assert len(plan.residuals) == 1
    assert plan.query.num_relations == 3
    assert plan.query.root == "A"


def test_acyclic_input_has_no_residuals():
    parsed = parse_query("select * from A, B where A.x = B.x")
    plan = spanning_tree_decomposition(parsed)
    assert not plan.is_cyclic
    assert plan.query.num_relations == 2


def test_stats_hint_keeps_selective_edges():
    parsed = parse_query(TRIANGLE)
    # Make the A-B edge the least selective: it should become residual.
    hint = {
        ("A", "x", "B", "x"): 10.0,
        ("B", "y", "C", "y"): 0.1,
        ("C", "z", "A", "z"): 0.2,
    }
    plan = spanning_tree_decomposition(parsed, driver="A", stats_hint=hint)
    residual = plan.residuals[0]
    assert {residual.relation_a, residual.relation_b} == {"A", "B"}


@pytest.mark.parametrize("mode", ExecutionMode.all_modes())
def test_cyclic_execution_matches_brute_force(triangle_catalog, mode):
    parsed = parse_query(TRIANGLE)
    plan = spanning_tree_decomposition(parsed, driver="A")
    expected = brute_force_triangle(triangle_catalog)
    size, result, rows = execute_cyclic(
        triangle_catalog, plan, mode=mode, collect_output=True
    )
    assert size == len(expected)
    got = sorted(zip(rows["A"].tolist(), rows["B"].tolist(),
                     rows["C"].tolist()))
    assert got == expected


def test_cyclic_execution_counts_without_collection(triangle_catalog):
    parsed = parse_query(TRIANGLE)
    plan = spanning_tree_decomposition(parsed, driver="A")
    expected = brute_force_triangle(triangle_catalog)
    size, result, rows = execute_cyclic(
        triangle_catalog, plan, mode=ExecutionMode.COM, collect_output=False
    )
    assert size == len(expected)
    assert rows is None


def test_acyclic_through_execute_cyclic(triangle_catalog):
    parsed = parse_query("select * from A, B where A.x = B.x")
    plan = spanning_tree_decomposition(parsed, driver="A")
    size, result, rows = execute_cyclic(
        triangle_catalog, plan, mode=ExecutionMode.STD, collect_output=True
    )
    a = triangle_catalog.table("A").column("x")
    b = triangle_catalog.table("B").column("x")
    expected = sum(int((b == value).sum()) for value in a.tolist())
    assert size == expected


def test_disconnected_rejected():
    parsed = parse_query("select * from A, B, C where A.x = B.x")
    with pytest.raises(ValueError, match="disconnected"):
        spanning_tree_decomposition(parsed)


def test_larger_cycle_two_residuals():
    parsed = parse_query(
        "select * from A, B, C, D "
        "where A.x = B.x and B.y = C.y and C.z = D.z and D.w = A.w "
        "and B.v = D.v"
    )
    plan = spanning_tree_decomposition(parsed, driver="A")
    assert len(plan.residuals) == 2
    assert plan.query.num_relations == 4


# ----------------------------------------------------------------------
# Spanning-tree enumeration
# ----------------------------------------------------------------------


def _enumerate(parsed, weights=None, **kwargs):
    predicates = list(parsed.join_predicates)
    if weights is None:
        weights = [1.0] * len(predicates)
    return list(enumerate_spanning_trees(
        list(parsed.relations), predicates, weights, **kwargs
    ))


def test_triangle_has_three_spanning_trees():
    parsed = parse_query(TRIANGLE)
    trees = _enumerate(parsed)
    assert len(trees) == 3
    assert len(set(trees)) == 3
    assert all(len(tree) == 2 for tree in trees)


def test_k4_has_sixteen_spanning_trees():
    # Cayley: n^(n-2) spanning trees of the complete graph.
    parsed = parse_query(
        "select * from A, B, C, D "
        "where A.x = B.x and A.y = C.y and A.z = D.z "
        "and B.u = C.u and B.v = D.v and C.w = D.w"
    )
    trees = _enumerate(parsed)
    assert len(trees) == 16
    assert len(set(trees)) == 16


def test_enumeration_starts_at_kruskal_minimum_and_ascends():
    parsed = parse_query(TRIANGLE)
    weights = [0.1, 5.0, 1.0]  # A-B cheap, B-C expensive, C-A middle
    trees = _enumerate(parsed, weights)
    totals = [sum(weights[i] for i in tree) for tree in trees]
    assert totals == sorted(totals)
    assert set(trees[0]) == {0, 2}  # the two cheapest edges


def test_enumeration_max_trees_cap():
    parsed = parse_query(TRIANGLE)
    assert len(_enumerate(parsed, max_trees=1)) == 1


def test_enumeration_handles_parallel_predicates():
    # Two predicates between one relation pair: 2 relations, 2 trees.
    parsed = parse_query("select * from A, B where A.x = B.x and A.y = B.y")
    assert not parsed.is_acyclic()
    trees = _enumerate(parsed)
    assert sorted(trees) == [(0,), (1,)]


def test_decompose_and_residual_round_trip():
    parsed = parse_query(TRIANGLE)
    predicates = list(parsed.join_predicates)
    plan = decompose(parsed, predicates[:2], driver="B")
    assert plan.query.root == "B"
    assert [r.key for r in plan.residuals] == [predicates[2]]
    rebuilt = tree_query_from_residuals(parsed, plan.residuals, "B")
    assert {(e.parent, e.child) for e in rebuilt.edges} == \
        {(e.parent, e.child) for e in plan.query.edges}


def test_tree_signature_is_stable():
    parsed = parse_query(TRIANGLE)
    predicates = list(parsed.join_predicates)
    first = decompose(parsed, predicates[:2], driver="A")
    second = decompose(parsed, predicates[:2], driver="A")
    other = decompose(parsed, predicates[1:], driver="A")
    assert first.tree_signature() == second.tree_signature()
    assert first.tree_signature() != other.tree_signature()


# ----------------------------------------------------------------------
# Exact residual comparison (PR 3 float-key semantics)
# ----------------------------------------------------------------------


def test_exact_equal_plain_integers():
    got = exact_equal(np.array([1, 2, 3]), np.array([1, 5, 3]))
    assert got.tolist() == [True, False, True]


def test_exact_equal_integral_floats_match_ints():
    got = exact_equal(np.array([1, 2, 3]), np.array([1.0, 2.5, 3.0]))
    assert got.tolist() == [True, False, True]


def test_exact_equal_huge_int_float_collision():
    # 2**53 and 2**53 + 1 collide after a float64 upcast; the exact
    # comparison keeps them apart (same semantics as sharded probes).
    huge = 2 ** 53
    ints = np.array([huge + 1, huge], dtype=np.int64)
    floats = np.array([float(huge), float(huge)])
    naive = ints == floats
    assert naive.tolist() == [True, True]  # the bug being fixed
    assert exact_equal(ints, floats).tolist() == [False, True]


def test_exact_equal_nan_and_inf_match_nothing():
    ints = np.array([0, 1, 2], dtype=np.int64)
    floats = np.array([np.nan, np.inf, -np.inf])
    assert not exact_equal(ints, floats).any()
    # NaN != NaN in float-float comparisons too (join semantics)
    nans = np.array([np.nan, 1.0])
    assert exact_equal(nans, nans).tolist() == [False, True]


def test_exact_equal_out_of_range_floats():
    ints = np.array([2 ** 63 - 1, -(2 ** 63)], dtype=np.int64)
    floats = np.array([float(2 ** 63), float(-(2 ** 63))])
    got = exact_equal(ints, floats)
    assert got.tolist() == [False, True]  # -2**63 is exactly representable


def test_exact_equal_bool_routes_as_int():
    got = exact_equal(np.array([True, False]), np.array([1, 1]))
    assert got.tolist() == [True, False]


# ----------------------------------------------------------------------
# Residual-cost model and execution counters
# ----------------------------------------------------------------------


def test_residual_filter_cost_is_progressive():
    weights = CostWeights()
    cost = residual_filter_cost(1000.0, (0.1, 0.5), weights)
    # filter 1 sees 1000 tuples, filter 2 only the 100 survivors
    assert cost == pytest.approx((1000 + 100) * weights.semijoin_probe)
    assert residual_filter_cost(1000.0, (), weights) == 0.0


@pytest.mark.parametrize("collect_output", [False, True])
def test_residual_counters_match_across_pipelines(triangle_catalog,
                                                  collect_output):
    """Both pipelines count every residual comparison; the factorized
    path pushes root-to-leaf residuals into the entries before
    expansion, so its residual *input* (tuples still needing expanded
    filtering) can only shrink relative to the flat pipeline."""
    parsed = parse_query(TRIANGLE)
    plan = spanning_tree_decomposition(parsed, driver="A")
    size_com, com, _ = execute_cyclic(
        triangle_catalog, plan, mode=ExecutionMode.COM,
        collect_output=collect_output,
    )
    size_std, std, _ = execute_cyclic(
        triangle_catalog, plan, mode=ExecutionMode.STD,
        collect_output=collect_output,
    )
    assert size_com == size_std
    assert std.counters.residual_input_tuples > 0
    assert 0 < com.counters.residual_input_tuples <= \
        std.counters.residual_input_tuples
    assert com.counters.residual_checks > 0
    assert std.counters.residual_checks > 0
    # the pushdown also shrinks the factorized path's expansion peak
    assert com.counters.peak_intermediate_tuples <= \
        std.counters.peak_intermediate_tuples


def test_counting_matches_collecting(triangle_catalog):
    parsed = parse_query(TRIANGLE)
    plan = spanning_tree_decomposition(parsed, driver="A")
    for mode in (ExecutionMode.COM, ExecutionMode.STD):
        counted, counted_result, rows = execute_cyclic(
            triangle_catalog, plan, mode=mode, collect_output=False,
        )
        collected, collected_result, collected_rows = execute_cyclic(
            triangle_catalog, plan, mode=mode, collect_output=True,
        )
        assert rows is None and counted_result.output_rows is None
        assert counted == collected == len(collected_rows["A"])
        assert counted_result.counters.residual_checks == \
            collected_result.counters.residual_checks


def test_execute_cyclic_on_partitioned_catalog(triangle_catalog):
    """The unpartitioned-catalog restriction is lifted: residual values
    are fetched in base-row-id space, so results are bit-identical."""
    parsed = parse_query(TRIANGLE)
    plan = spanning_tree_decomposition(parsed, driver="A")
    expected = brute_force_triangle(triangle_catalog)
    partitioned = triangle_catalog.derived_with({
        "B": PartitionedTable.from_table(
            triangle_catalog.table("B"), "x", 2),
        "C": PartitionedTable.from_table(
            triangle_catalog.table("C"), "z", 2),
    })
    for mode in ExecutionMode.all_modes():
        size, result, rows = execute_cyclic(
            partitioned, plan, mode=mode, collect_output=True
        )
        assert size == len(expected)
        got = sorted(zip(rows["A"].tolist(), rows["B"].tolist(),
                         rows["C"].tolist()))
        assert got == expected
    assert result.shards_used == 2
