"""Unit tests for JoinQuery and join orders."""

import numpy as np
import pytest

from repro.core import JoinEdge, JoinQuery


def test_basic_structure(running_example_query):
    q = running_example_query
    assert q.root == "R1"
    assert q.num_relations == 6
    assert q.parent("R3") == "R2"
    assert q.parent("R1") is None
    assert set(q.children("R1")) == {"R2", "R5"}
    assert q.is_leaf("R3")
    assert not q.is_leaf("R2")


def test_path_and_depth(running_example_query):
    q = running_example_query
    assert q.path_to_root("R6") == ["R6", "R5", "R1"]
    assert q.depth("R1") == 0
    assert q.depth("R6") == 2


def test_subtree_and_traversals(running_example_query):
    q = running_example_query
    assert set(q.subtree("R2")) == {"R2", "R3", "R4"}
    pre = q.preorder()
    assert pre[0] == "R1"
    post = q.postorder()
    assert post[-1] == "R1"
    for rel in q.relations:
        if rel != q.root:
            assert post.index(rel) < post.index(q.parent(rel))


def test_internal_relations(running_example_query):
    assert set(running_example_query.internal_relations()) == {"R1", "R2", "R5"}


def test_duplicate_child_rejected():
    with pytest.raises(ValueError, match="two parents"):
        JoinQuery("A", [
            JoinEdge("A", "B", "x", "x"),
            JoinEdge("A", "B", "y", "y"),
        ])


def test_root_as_child_rejected():
    with pytest.raises(ValueError, match="cannot be a child"):
        JoinQuery("A", [JoinEdge("B", "A", "x", "x")])


def test_disconnected_edge_rejected():
    with pytest.raises(ValueError, match="not reachable"):
        JoinQuery("A", [JoinEdge("X", "Y", "x", "x")])


def test_order_validation(running_example_query):
    q = running_example_query
    assert q.is_valid_order(["R2", "R3", "R4", "R5", "R6"])
    assert q.is_valid_order(["R5", "R6", "R2", "R4", "R3"])
    # R3 before its parent R2:
    assert not q.is_valid_order(["R3", "R2", "R4", "R5", "R6"])
    # Missing a relation:
    assert not q.is_valid_order(["R2", "R3", "R4", "R5"])
    with pytest.raises(ValueError, match="invalid join order"):
        q.validate_order(["R3", "R2", "R4", "R5", "R6"])


def test_eligible_next(running_example_query):
    q = running_example_query
    assert set(q.eligible_next([])) == {"R2", "R5"}
    assert set(q.eligible_next(["R2"])) == {"R3", "R4", "R5"}
    assert set(q.eligible_next(["R2", "R3", "R4", "R5"])) == {"R6"}


def test_all_orders_count(running_example_query):
    orders = list(running_example_query.all_orders())
    # Linear extensions of the forest {R2:{R3,R4}, R5:{R6}}: 20.
    assert len(orders) == 20
    assert len({tuple(o) for o in orders}) == 20
    for order in orders:
        assert running_example_query.is_valid_order(order)


def test_random_order_valid_and_seeded(running_example_query):
    q = running_example_query
    rng = np.random.default_rng(3)
    orders = [q.random_order(rng) for _ in range(20)]
    for order in orders:
        assert q.is_valid_order(order)
    # Seeded reproducibility:
    a = q.random_order(np.random.default_rng(5))
    b = q.random_order(np.random.default_rng(5))
    assert a == b


def test_rerooted_preserves_join_graph(running_example_query):
    q = running_example_query
    rerooted = q.rerooted("R3")
    assert rerooted.root == "R3"
    assert rerooted.num_relations == q.num_relations
    original = {
        frozenset([(e.parent, e.parent_attr), (e.child, e.child_attr)])
        for e in q.edges
    }
    flipped = {
        frozenset([(e.parent, e.parent_attr), (e.child, e.child_attr)])
        for e in rerooted.edges
    }
    assert original == flipped


def test_rerooted_same_root_is_identity(running_example_query):
    assert running_example_query.rerooted("R1") is running_example_query


def test_rerooted_unknown_relation(running_example_query):
    with pytest.raises(KeyError):
        running_example_query.rerooted("nope")
