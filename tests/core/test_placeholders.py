"""``?`` placeholders in the SQL parser and ParsedQuery.bind()."""

import pytest

from repro.core.parser import ParseError, Placeholder, parse_query
from repro.planner import Planner
from tests.helpers import make_small_catalog


def test_placeholders_parse_in_source_order():
    parsed = parse_query(
        "select * from R1, R2 where R1.B = R2.B and R1.A = ? and R2.C = ?"
    )
    assert parsed.num_placeholders == 2
    assert parsed.selections["R1"]["A"] == Placeholder(0)
    assert parsed.selections["R2"]["C"] == Placeholder(1)


def test_bind_substitutes_constants_without_mutating():
    parsed = parse_query(
        "select * from R1, R2 where R1.B = R2.B and R1.A = ? and R2.C = ?"
    )
    bound = parsed.bind(7, "x")
    assert bound.selections == {"R1": {"A": 7}, "R2": {"C": "x"}}
    assert bound.num_placeholders == 0
    # the original template is unchanged
    assert parsed.num_placeholders == 2


def test_bind_arity_checked():
    parsed = parse_query("select * from R1, R2 where R1.B = R2.B and R1.A = ?")
    with pytest.raises(ValueError, match="1 placeholder"):
        parsed.bind()
    with pytest.raises(ValueError, match="1 placeholder"):
        parsed.bind(1, 2)


def test_bind_mixed_with_literals():
    parsed = parse_query(
        "select * from R1, R2 where R1.B = R2.B and R1.A = 3 and R2.C = ?"
    )
    bound = parsed.bind(5)
    assert bound.selections == {"R1": {"A": 3}, "R2": {"C": 5}}


def test_planner_rejects_unbound_placeholders():
    planner = Planner(make_small_catalog())
    parsed = parse_query("select * from R1, R2 where R1.B = R2.B and R2.C = ?")
    with pytest.raises(ValueError, match="unbound"):
        planner.plan(parsed)


def test_placeholder_only_valid_as_literal_position():
    with pytest.raises(ParseError):
        parse_query("select * from R1, R2 where ? = R2.B")


def test_duplicate_placeholder_on_same_column_rejected():
    # A silent overwrite would leave a dangling placeholder index and
    # make bind() raise IndexError after passing its arity check.
    with pytest.raises(ParseError, match="duplicate selection"):
        parse_query(
            "select * from R1, R2 where R1.B = R2.B "
            "and R1.A = ? and R1.A = ?"
        )
    with pytest.raises(ParseError, match="duplicate selection"):
        parse_query(
            "select * from R1, R2 where R1.B = R2.B "
            "and R1.A = 3 and R1.A = ?"
        )
    # duplicate *literal* selections dedupe / contradict instead
    # (see tests/core/test_parser.py::TestConjunctiveSelections)
    parsed = parse_query(
        "select * from R1, R2 where R1.B = R2.B and R1.A = 3 and R1.A = 4"
    )
    from repro.core.parser import Contradiction

    assert parsed.selections["R1"]["A"] == Contradiction((3, 4))
