"""Cost-model tests: survival probabilities, Eq. (1), STD, plan costs.

Every closed-form expression written out in Section 3.3 of the paper is
checked verbatim against the implementation.
"""

import pytest

from repro.core import (
    CostWeights,
    com_plan_cost,
    com_probes_per_join,
    expected_output_size,
    plan_cost,
    std_plan_cost,
    std_probes_per_join,
    survival_probability,
)
from repro.modes import ExecutionMode

from tests.helpers import RUNNING_EXAMPLE_FO as FO
from tests.helpers import RUNNING_EXAMPLE_M as M

N = 1000.0
ORDER = ["R2", "R3", "R5", "R4", "R6"]


class TestSurvivalProbability:
    def test_single_relation(self, running_example_query, running_example_stats):
        got = survival_probability(
            running_example_query, running_example_stats, {"R1", "R2"}
        )
        assert got == pytest.approx(M["R2"])

    def test_chain(self, running_example_query, running_example_stats):
        # m_{1,2,3} = m2 (1 - (1 - m3)^fo2)
        got = survival_probability(
            running_example_query, running_example_stats, {"R1", "R2", "R3"}
        )
        expected = M["R2"] * (1 - (1 - M["R3"]) ** FO["R2"])
        assert got == pytest.approx(expected)

    def test_branching(self, running_example_query, running_example_stats):
        # m_{1,2,3,4} = m2 (1 - (1 - m3 m4)^fo2)  (paper, Section 3.3)
        got = survival_probability(
            running_example_query, running_example_stats,
            {"R1", "R2", "R3", "R4"},
        )
        expected = M["R2"] * (1 - (1 - M["R3"] * M["R4"]) ** FO["R2"])
        assert got == pytest.approx(expected)

    def test_subtree_rooted_below_driver(
        self, running_example_query, running_example_stats
    ):
        got = survival_probability(
            running_example_query, running_example_stats,
            {"R2", "R3"}, subtree_root="R2",
        )
        expected = M["R2"] * (1 - (1 - M["R3"]) ** FO["R2"])
        assert got == pytest.approx(expected)

    def test_root_must_be_member(
        self, running_example_query, running_example_stats
    ):
        with pytest.raises(ValueError, match="not in members"):
            survival_probability(
                running_example_query, running_example_stats, {"R2"}
            )

    def test_bounded_by_unit_interval(
        self, running_example_query, running_example_stats
    ):
        for members in (
            {"R1", "R2"}, {"R1", "R5", "R6"},
            {"R1", "R2", "R3", "R4", "R5", "R6"},
        ):
            value = survival_probability(
                running_example_query, running_example_stats, members
            )
            assert 0.0 <= value <= 1.0


class TestEquationOne:
    def test_full_running_example(
        self, running_example_query, running_example_stats
    ):
        """The five probe counts computed in Section 3.3, verbatim."""
        probes = com_probes_per_join(
            running_example_query, running_example_stats, ORDER
        )
        assert probes["R2"] == pytest.approx(N)
        assert probes["R3"] == pytest.approx(N * M["R2"] * FO["R2"])
        assert probes["R5"] == pytest.approx(
            N * M["R2"] * (1 - (1 - M["R3"]) ** FO["R2"])
        )
        assert probes["R4"] == pytest.approx(
            N * M["R2"] * M["R5"] * FO["R2"] * M["R3"]
        )
        assert probes["R6"] == pytest.approx(
            N * M["R2"] * (1 - (1 - M["R3"] * M["R4"]) ** FO["R2"])
            * M["R5"] * FO["R5"]
        )

    def test_com_probes_order_dependent_but_set_consistent(
        self, running_example_query, running_example_stats
    ):
        """Probes into the final relation depend only on the prefix set."""
        q, st = running_example_query, running_example_stats
        orders = [o for o in q.all_orders() if o[-1] == "R6"]
        values = {
            round(com_probes_per_join(q, st, order)["R6"], 9)
            for order in orders
        }
        assert len(values) == 1

    def test_invalid_order_rejected(
        self, running_example_query, running_example_stats
    ):
        with pytest.raises(ValueError):
            com_probes_per_join(
                running_example_query, running_example_stats,
                ["R3", "R2", "R4", "R5", "R6"],
            )


class TestStdModel:
    def test_probes_are_prefix_products(
        self, running_example_query, running_example_stats
    ):
        probes = std_probes_per_join(
            running_example_query, running_example_stats, ORDER
        )
        tuples = N
        for relation in ORDER:
            assert probes[relation] == pytest.approx(tuples)
            tuples *= M[relation] * FO[relation]

    def test_com_never_exceeds_std(
        self, running_example_query, running_example_stats
    ):
        for order in running_example_query.all_orders():
            com = com_probes_per_join(
                running_example_query, running_example_stats, order
            )
            std = std_probes_per_join(
                running_example_query, running_example_stats, order
            )
            for relation in order:
                assert com[relation] <= std[relation] + 1e-9

    def test_equal_when_all_fanouts_one(
        self, running_example_query, running_example_stats
    ):
        """Paper: the two expressions coincide when every fo = 1."""
        st = running_example_stats
        for relation in ("R2", "R3", "R4", "R5", "R6"):
            st = st.with_edge(relation, st.stats(relation).__class__(
                m=st.m(relation), fo=1.0
            ))
        com = com_probes_per_join(running_example_query, st, ORDER)
        std = std_probes_per_join(running_example_query, st, ORDER)
        for relation in ORDER:
            assert com[relation] == pytest.approx(std[relation])


class TestPlanCosts:
    def test_expected_output_size(
        self, running_example_query, running_example_stats
    ):
        expected = N
        for relation in ("R2", "R3", "R4", "R5", "R6"):
            expected *= M[relation] * FO[relation]
        assert expected_output_size(
            running_example_query, running_example_stats
        ) == pytest.approx(expected)

    def test_com_plan_cost_components(
        self, running_example_query, running_example_stats
    ):
        cost = com_plan_cost(
            running_example_query, running_example_stats, ORDER,
            flat_output=True,
        )
        probes = com_probes_per_join(
            running_example_query, running_example_stats, ORDER
        )
        assert cost.hash_probes == pytest.approx(sum(probes.values()))
        assert cost.hash_probes_by_relation == pytest.approx(probes)
        assert cost.bitvector_probes == 0
        assert cost.semijoin_probes == 0

    def test_flat_output_adds_expansion(
        self, running_example_query, running_example_stats
    ):
        flat = com_plan_cost(
            running_example_query, running_example_stats, ORDER,
            flat_output=True,
        )
        factorized = com_plan_cost(
            running_example_query, running_example_stats, ORDER,
            flat_output=False,
        )
        assert flat.tuples_generated - factorized.tuples_generated == (
            pytest.approx(expected_output_size(
                running_example_query, running_example_stats
            ))
        )

    def test_std_plan_cost_counts_generation(
        self, running_example_query, running_example_stats
    ):
        cost = std_plan_cost(
            running_example_query, running_example_stats, ORDER
        )
        tuples, generated = N, 0.0
        for relation in ORDER:
            tuples *= M[relation] * FO[relation]
            generated += tuples
        assert cost.tuples_generated == pytest.approx(generated)

    def test_weights_applied(self):
        from repro.core import PlanCost

        cost = PlanCost(
            hash_probes=100, bitvector_probes=10,
            semijoin_probes=20, tuples_generated=140,
        )
        weights = CostWeights()
        assert cost.total(weights) == pytest.approx(
            100 + 5 + 10 + 10
        )

    def test_plan_cost_dispatcher_covers_all_modes(
        self, running_example_query, running_example_stats
    ):
        for mode in ExecutionMode.all_modes():
            cost = plan_cost(
                running_example_query, running_example_stats, ORDER, mode
            )
            assert cost.hash_probes > 0
            assert cost.total() > 0

    def test_plan_cost_add_accumulates(self):
        from repro.core import PlanCost

        a = PlanCost(hash_probes=1, hash_probes_by_relation={"X": 1})
        b = PlanCost(hash_probes=2, hash_probes_by_relation={"X": 2, "Y": 3})
        a.add(b)
        assert a.hash_probes == 3
        assert a.hash_probes_by_relation == {"X": 3, "Y": 3}
