"""Tests for the SQL-subset parser."""

import pytest

from repro.core import Contradiction, ParseError, parse_query

PAPER_QUERY = """
select * from R1, R2, R3, R4, R5, R6
where R1.B = R2.B and R2.C = R3.C and R2.D = R4.D
  and R1.E = R5.E and R5.F = R6.F
"""


def test_paper_query_parses():
    parsed = parse_query(PAPER_QUERY)
    assert set(parsed.relations) == {"R1", "R2", "R3", "R4", "R5", "R6"}
    assert len(parsed.join_predicates) == 5
    assert parsed.selections == {}
    assert parsed.is_acyclic()
    assert parsed.is_connected()


def test_paper_query_to_join_tree():
    parsed = parse_query(PAPER_QUERY)
    query = parsed.to_join_query(driver="R1")
    assert query.root == "R1"
    assert set(query.children("R1")) == {"R2", "R5"}
    assert set(query.children("R2")) == {"R3", "R4"}
    assert query.children("R5") == ["R6"]
    edge = query.edge_to("R2")
    assert (edge.parent_attr, edge.child_attr) == ("B", "B")


def test_driver_choice_reroots():
    parsed = parse_query(PAPER_QUERY)
    query = parsed.to_join_query(driver="R3")
    assert query.root == "R3"
    assert query.num_relations == 6
    with pytest.raises(KeyError):
        parsed.to_join_query(driver="R9")


def test_selection_predicates():
    parsed = parse_query(
        "SELECT * FROM orders, items "
        "WHERE orders.oid = items.oid AND orders.region = 3 "
        "AND items.kind = 'gift'"
    )
    assert parsed.selections == {
        "orders": {"region": 3},
        "items": {"kind": "gift"},
    }
    assert len(parsed.join_predicates) == 1


def test_aliases():
    parsed = parse_query(
        "select * from trusts t1, trusts as t2 where t1.dst = t2.src"
    )
    assert parsed.relations == {"t1": "trusts", "t2": "trusts"}
    assert parsed.table_name("t1") == "trusts"
    query = parsed.to_join_query()
    assert query.num_relations == 2


def test_case_insensitive_keywords():
    parsed = parse_query("SeLeCt * FrOm A, B WhErE A.x = B.y")
    assert set(parsed.relations) == {"A", "B"}


def test_no_where_clause():
    parsed = parse_query("select * from Solo")
    assert parsed.relations == {"Solo": "Solo"}
    query = parsed.to_join_query()
    assert query.num_relations == 1


def test_cyclic_detected():
    parsed = parse_query(
        "select * from A, B, C where A.x = B.x and B.y = C.y and C.z = A.z"
    )
    assert not parsed.is_acyclic()
    with pytest.raises(ParseError, match="cyclic"):
        parsed.to_join_query()


def test_disconnected_rejected():
    parsed = parse_query("select * from A, B, C where A.x = B.x")
    assert not parsed.is_connected()
    with pytest.raises(ParseError, match="disconnected"):
        parsed.to_join_query()


@pytest.mark.parametrize("bad", [
    "",
    "select x from A",
    "select * from",
    "select * from A where A.x =",
    "select * from A, A where A.x = A.y",
    "select * from A where B.x = A.y",
    "select * from A, B where A.x = A.y",  # self-join predicate
    "select * from A, B where A.x = B.y extra",
    "insert into A values (1)",
])
def test_malformed_queries_rejected(bad):
    with pytest.raises((ParseError, KeyError)):
        parse_query(bad)


def test_negative_and_string_literals():
    parsed = parse_query(
        "select * from A, B where A.x = B.x and A.v = -7 and B.w = 'abc'"
    )
    assert parsed.selections["A"]["v"] == -7
    assert parsed.selections["B"]["w"] == "abc"


def test_duplicate_alias_rejected():
    with pytest.raises(ParseError, match="duplicate"):
        parse_query("select * from A t, B t where t.x = t.y")


# ----------------------------------------------------------------------
# Conjunctive constant selections (ISSUE 2 bugfix): equal literals
# dedupe, distinct literals yield a provably-empty predicate — never
# silent last-literal-wins.
# ----------------------------------------------------------------------


class TestConjunctiveSelections:
    def test_equal_literals_dedupe(self):
        parsed = parse_query(
            "select * from A, B where A.x = B.x and A.v = 1 and A.v = 1"
        )
        assert parsed.selections == {"A": {"v": 1}}
        assert not parsed.is_contradictory

    def test_distinct_literals_are_a_contradiction(self):
        parsed = parse_query(
            "select * from A, B where A.x = B.x and A.v = 1 and A.v = 2"
        )
        assert parsed.selections["A"]["v"] == Contradiction((1, 2))
        assert parsed.is_contradictory

    def test_contradiction_absorbs_further_duplicates(self):
        parsed = parse_query(
            "select * from A, B where A.x = B.x "
            "and A.v = 1 and A.v = 2 and A.v = 2 and A.v = 3"
        )
        assert parsed.selections["A"]["v"] == Contradiction((1, 2, 3))

    def test_type_mismatched_literals_contradict(self):
        # 1 and '1' are different constants, never conflated
        parsed = parse_query(
            "select * from A, B where A.x = B.x and A.v = 1 and A.v = '1'"
        )
        assert parsed.is_contradictory

    def test_same_column_name_on_different_relations_untouched(self):
        parsed = parse_query(
            "select * from A, B where A.x = B.x and A.v = 1 and B.v = 2"
        )
        assert parsed.selections == {"A": {"v": 1}, "B": {"v": 2}}
        assert not parsed.is_contradictory

    def test_contradictory_query_executes_to_empty_result(self):
        from repro import Planner
        from tests.helpers import make_small_catalog

        catalog = make_small_catalog()
        sql = (
            "select * from R1, R2 where R1.B = R2.B "
            "and R2.C = 1 and R2.C = 2"
        )
        plan = Planner(catalog).plan(sql, mode="COM")
        assert len(plan.catalog.table("R2")) == 0  # empty push-down
        result = plan.execute(collect_output=True)
        assert result.output_size == 0

    def test_contradiction_flows_through_the_service_layer(self):
        from repro import QuerySession
        from tests.helpers import make_small_catalog

        session = QuerySession(make_small_catalog())
        sql = (
            "select * from R1, R2 where R1.B = R2.B "
            "and R2.C = 3 and R2.C = 4"
        )
        report = session.execute(sql, collect_output=True)
        assert report.ok
        assert report.result.output_size == 0
        # distinct contradictions key distinct cache entries
        other = "select * from R1, R2 where R1.B = R2.B and R2.C = 3"
        session.plan(other)
        assert session.plan_cache.stats.misses >= 2
