"""Robustness-analysis tests (Section 3.7)."""

import numpy as np
import pytest

from repro.core import (
    best_star_order,
    estimation_error_experiment,
    star_query,
    theta_fragility,
    theta_robustness,
)
from repro.core.robustness import _plan_cost_for_model
from repro.core import EdgeStats, QueryStats


class TestClosedForms:
    def test_theta_geometric_form(self):
        # (1 - s^(n-1)) / (1 - s) = 1 + s + ... + s^(n-2)
        s, n = 0.5, 5
        expected = sum(s ** i for i in range(n - 1))
        assert theta_fragility(s, n) == pytest.approx(expected)

    def test_theta_at_one_is_limit(self):
        assert theta_fragility(1.0, 6) == pytest.approx(5.0)

    def test_theta_requires_two_dimensions(self):
        with pytest.raises(ValueError):
            theta_fragility(0.5, 1)

    def test_match_bound_tighter_than_selectivity_bound(self):
        """m <= 1 while s can exceed 1: the match-based spread is
        smaller whenever fanouts amplify selectivities."""
        n = 10
        m_min, fo = 0.3, 5.0
        s_min = m_min * fo
        assert theta_fragility(m_min, n) < theta_fragility(s_min, n)

    def test_theta_robustness_formula(self):
        lo, hi, n = 0.2, 0.8, 6
        expected = sum(hi ** i - lo ** i for i in range(1, n - 1)) / (hi - lo)
        assert theta_robustness(lo, hi, n) == pytest.approx(expected)

    def test_theta_robustness_degenerate(self):
        assert theta_robustness(0.5, 0.5, 6) == 0.0
        assert theta_robustness(0.2, 0.8, 2) == 0.0


class TestStarHelpers:
    def test_star_query_shape(self):
        query = star_query(4)
        assert query.num_relations == 5
        assert all(query.parent(rel) == query.root
                   for rel in query.non_root_relations)

    def test_best_star_order_selectivity(self):
        query = star_query(3)
        stats = QueryStats(1.0, {
            "D1": EdgeStats(0.9, 4.0),
            "D2": EdgeStats(0.3, 2.0),
            "D3": EdgeStats(0.8, 1.0),
        })
        assert best_star_order(query, stats, "selectivity") == [
            "D2", "D3", "D1"
        ]
        assert best_star_order(query, stats, "match") == ["D2", "D3", "D1"]

    def test_best_star_order_model_validation(self):
        query = star_query(2)
        stats = QueryStats(1.0, {
            "D1": EdgeStats(0.5, 1.0), "D2": EdgeStats(0.5, 1.0)
        })
        with pytest.raises(ValueError):
            best_star_order(query, stats, "bogus")

    def test_sort_order_is_truly_optimal(self):
        """Exhaustive check that ascending-m is the COM optimum and
        ascending-s the STD optimum on a small star."""
        rng = np.random.default_rng(7)
        query = star_query(4)
        for _ in range(10):
            stats = QueryStats(1.0, {
                rel: EdgeStats(float(rng.uniform(0.05, 0.95)),
                               float(rng.uniform(1, 10)))
                for rel in query.non_root_relations
            })
            for model in ("selectivity", "match"):
                best = best_star_order(query, stats, model)
                best_cost = _plan_cost_for_model(query, stats, best, model)
                for order in query.all_orders():
                    other = _plan_cost_for_model(query, stats, order, model)
                    assert best_cost <= other + 1e-9


class TestEstimationErrorExperiment:
    def test_returns_both_models(self):
        results = estimation_error_experiment(
            m_range=(0.05, 0.2), fo_range=(1, 10),
            error_range=(0.15, 0.2), num_samples=20, seed=1,
        )
        assert set(results) == {"selectivity", "match"}
        for res in results.values():
            assert len(res.pct_differences) == 20
            assert (res.pct_differences >= -1e-9).all()

    def test_match_model_more_robust_under_large_errors(self):
        """Figure 6's message: under 90-95% estimation error and high
        fanout, the match-based model picks plans much closer to the
        optimum than the selectivity-based model."""
        results = estimation_error_experiment(
            m_range=(0.05, 0.2), fo_range=(10, 100),
            error_range=(0.9, 0.95), num_samples=100, seed=3,
        )
        assert results["match"].mean <= results["selectivity"].mean

    def test_low_error_low_difference(self):
        results = estimation_error_experiment(
            m_range=(0.5, 0.9), fo_range=(1, 2),
            error_range=(0.15, 0.2), num_samples=50, seed=5,
        )
        # Percentage differences stay modest under small errors.
        assert results["match"].mean < 50
        assert results["selectivity"].mean < 50

    def test_summary_statistics(self):
        results = estimation_error_experiment(
            m_range=(0.1, 0.5), fo_range=(1, 10),
            error_range=(0.5, 0.6), num_samples=30, seed=9,
        )
        res = results["match"]
        assert res.median <= res.p90 + 1e-9
        assert res.mean >= 0.0
