"""Tests for branch-and-bound pruning and the cross-rooting driver search."""

import numpy as np
import pytest

from repro.core import (
    beam_order,
    exhaustive_optimal,
    idp_order,
    incremental_order_cost,
    plan_cost,
    stats_from_data,
)
from repro.core.costmodel import CostWeights, expected_output_size
from repro.core.stats import (
    directed_stats_from_data,
    stats_for_rooting,
    undirected_signature,
)
from repro.modes import ExecutionMode
from repro.planner import Planner
from repro.workloads.large_joins import (
    large_join_catalog,
    large_query_stats,
    random_tree_query,
    star_query,
)

DP_MODES = (ExecutionMode.COM, ExecutionMode.STD, ExecutionMode.BVP_COM,
            ExecutionMode.BVP_STD)


class TestUpperBoundPruning:
    @pytest.mark.parametrize("mode", DP_MODES)
    def test_bound_above_optimum_changes_nothing(self, mode):
        query = random_tree_query(9, seed=5)
        stats = large_query_stats(query, seed=5)
        free = exhaustive_optimal(query, stats, mode=mode)
        bounded = exhaustive_optimal(query, stats, mode=mode,
                                     upper_bound=free.cost * (1 + 1e-9))
        assert bounded.order == free.order
        assert bounded.cost == free.cost

    @pytest.mark.parametrize("mode", DP_MODES)
    def test_bound_at_or_below_optimum_prunes_out(self, mode):
        query = random_tree_query(9, seed=6)
        stats = large_query_stats(query, seed=6)
        free = exhaustive_optimal(query, stats, mode=mode)
        assert exhaustive_optimal(query, stats, mode=mode,
                                  upper_bound=free.cost) is None
        assert exhaustive_optimal(query, stats, mode=mode,
                                  upper_bound=free.cost * 0.5) is None

    def test_idp_and_beam_prune_out_too(self):
        query = star_query(12)
        stats = large_query_stats(query, seed=7)
        for search in (
            lambda bound: idp_order(query, stats, block_size=4,
                                    upper_bound=bound),
            lambda bound: beam_order(query, stats, beam_width=4,
                                     upper_bound=bound),
        ):
            free = search(None)
            assert search(free.cost * 2).cost <= free.cost * 2
            assert search(free.cost * 1e-6) is None

    @pytest.mark.parametrize("mode", DP_MODES)
    def test_full_cost_dominates_dp_objective(self, mode):
        # The driver search prunes DP states against an incumbent's
        # *full* plan cost minus the output-size tuple floor; that is
        # only sound if full cost >= DP objective + floor for any
        # order.  Check the inequality on random orders.
        rng = np.random.default_rng(11)
        for seed in range(5):
            query = random_tree_query(8, seed=seed)
            stats = large_query_stats(query, seed=seed)
            order = query.random_order(rng)
            for flat_output in (True, False):
                weights = CostWeights()
                full = plan_cost(query, stats, order, mode,
                                 flat_output=flat_output).total(weights)
                incremental = incremental_order_cost(
                    query, stats, order, mode, weights=weights
                )
                floor = 0.0
                if flat_output or not mode.factorized:
                    floor = (expected_output_size(query, stats)
                             * weights.tuple_generation)
                assert full >= incremental + floor - 1e-9 * abs(full), (
                    mode, flat_output, seed
                )


class TestDirectedStats:
    def test_both_directions_match_per_rooting_derivation(self):
        query = random_tree_query(7, seed=2)
        catalog = large_join_catalog(query, rows_per_relation=200, seed=3)
        directed, sizes = directed_stats_from_data(catalog, query)
        assert len(directed) == 2 * len(query.edges)
        for root in query.relations:
            rooted = query.rerooted(root)
            assembled = stats_for_rooting(rooted, directed, sizes)
            reference = stats_from_data(catalog, rooted)
            assert assembled.driver_size == reference.driver_size
            for relation in rooted.non_root_relations:
                assert assembled.m(relation) == reference.m(relation)
                assert assembled.fo(relation) == reference.fo(relation)

    def test_undirected_signature_rooting_invariant(self):
        query = random_tree_query(7, seed=4)
        signatures = {
            undirected_signature(query.rerooted(root))
            for root in query.relations
        }
        assert len(signatures) == 1


class TestDriverAutoSearch:
    @pytest.mark.parametrize("mode", ["COM", "auto"])
    @pytest.mark.parametrize("optimizer", ["exhaustive", "auto"])
    def test_matches_naive_per_rooting_sweep(self, mode, optimizer):
        query = random_tree_query(8, seed=9)
        catalog = large_join_catalog(query, rows_per_relation=200, seed=9)
        auto = Planner(catalog, stats_cache=True).plan(
            query, mode=mode, driver="auto", optimizer=optimizer
        )
        best = None
        for root in query.relations:
            plan = Planner(catalog).plan(
                query.rerooted(root), mode=mode, driver="fixed",
                optimizer=optimizer,
            )
            if best is None or plan.predicted_cost < best.predicted_cost:
                best = plan
        assert auto.predicted_cost == pytest.approx(
            best.predicted_cost, rel=1e-12
        )
        assert auto.query.root == best.query.root
        assert auto.order == best.order

    def test_driver_auto_executes_correctly(self):
        query = random_tree_query(6, seed=12)
        catalog = large_join_catalog(query, rows_per_relation=150, seed=12)
        planner = Planner(catalog, stats_cache=True)
        fixed = planner.plan(query, mode="COM", driver="fixed")
        auto = planner.plan(query, mode="COM", driver="auto")
        assert auto.predicted_cost <= fixed.predicted_cost * (1 + 1e-9)
        fixed_result = fixed.execute(collect_output=True)
        auto_result = auto.execute(collect_output=True)
        assert auto_result.output_size == fixed_result.output_size

    def test_prebuilt_stats_rejected_with_clear_error(self):
        # A prebuilt QueryStats is directional (valid for one rooting
        # only); probing other drivers with it used to KeyError deep in
        # the optimizer — now it is rejected up front.
        query = star_query(6)
        catalog = large_join_catalog(query, rows_per_relation=100, seed=13)
        stats = stats_from_data(catalog, query)
        with pytest.raises(ValueError, match="per-rooting statistics"):
            Planner(catalog).plan(query, mode="COM", driver="auto",
                                  stats=stats)

    def test_sampling_stats_driver_auto(self):
        query = random_tree_query(5, seed=14)
        catalog = large_join_catalog(query, rows_per_relation=400, seed=14)
        plan = Planner(catalog, stats_cache=True).plan(
            query, mode="COM", driver="auto", stats="sampling"
        )
        assert plan.query.is_valid_order(plan.order)

    def test_directed_derivation_shared_across_plans(self):
        query = random_tree_query(7, seed=15)
        catalog = large_join_catalog(query, rows_per_relation=150, seed=15)
        planner = Planner(catalog, stats_cache=True)
        planner.plan(query, mode="COM", driver="auto")
        misses_after_first = planner.stats_cache.stats.misses
        planner.plan(query.rerooted(query.relations[2]), mode="COM",
                     driver="auto")
        # the second search reuses the cached directed map (one hit, no
        # new directed derivation) — only dictionary assembly runs
        assert planner.stats_cache.stats.misses == misses_after_first
        assert planner.stats_cache.stats.hits > 0
