"""Pessimistic cardinality bounds and the bounded-regret planning gate.

Covers the guarantee chain end to end: max-frequency statistics are
measured exactly (monolithic and sharded alike), per-prefix bounds
really do dominate the true prefix cardinalities, the regret gate swaps
to the bound-optimal order exactly when the estimated-optimal plan's
worst case exceeds the configured factor, and — the fault-injection
regression — corrupted statistics that make ``robustness="off"`` pick a
catastrophic order leave the bounded plan within its regret cap.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import (
    EdgeStats,
    JoinEdge,
    JoinQuery,
    ROBUSTNESS_CHOICES,
    bound_stats_for_rooting,
    max_frequencies_from_data,
    prefix_cardinality_bounds,
    resolve_robustness,
    worst_case_cost,
)
from repro.modes import ExecutionMode
from repro.planner import Planner
from repro.storage import Catalog, partitioned_catalog

from tests.helpers import (
    StatsCorruptingCatalog,
    brute_force_join,
    make_running_example_query,
    make_small_catalog,
    result_tuples,
)

REGRET_FACTOR = 4.0


# ----------------------------------------------------------------------
# Adversarial workload: corrupted stats sell a catastrophic order
# ----------------------------------------------------------------------

N_DRIVER = 1500
HEAVY_FANOUT = 40
#: H claims near-perfect selectivity while it truly explodes, and S
#: claims to be 30x fatter than it is — the off planner orders H first
CORRUPTION = {"H": 1e-4, "S": 30.0}


def make_adversarial_catalog():
    """R drives; S is truly selective (1%), H truly multiplies by 40."""
    catalog = Catalog()
    catalog.add_table("R", {"a": np.arange(N_DRIVER)})
    catalog.add_table("S", {"a": np.arange(0, N_DRIVER, 100)})
    catalog.add_table(
        "H", {"a": np.repeat(np.arange(N_DRIVER), HEAVY_FANOUT)}
    )
    return catalog


def adversarial_query():
    return JoinQuery(
        "R", [JoinEdge("R", "S", "a", "a"), JoinEdge("R", "H", "a", "a")]
    )


def executed_cost(plan):
    result = plan.execute()
    return result.weighted_cost()


# ----------------------------------------------------------------------
# Knob resolution
# ----------------------------------------------------------------------


def test_resolve_robustness_accepts_all_choices():
    for choice in ROBUSTNESS_CHOICES:
        assert resolve_robustness(choice) == choice


def test_resolve_robustness_rejects_unknown():
    with pytest.raises(ValueError, match="robustness"):
        resolve_robustness("paranoid")


def test_planner_validates_robustness_and_regret_factor():
    catalog = make_small_catalog()
    with pytest.raises(ValueError):
        Planner(catalog, robustness="sometimes")
    with pytest.raises(ValueError):
        Planner(catalog, regret_factor=0.5)
    with pytest.raises(ValueError):
        Planner(catalog, regret_factor=True)


# ----------------------------------------------------------------------
# Max-frequency statistics
# ----------------------------------------------------------------------


def test_max_frequencies_match_numpy():
    catalog = make_small_catalog()
    query = make_running_example_query()
    max_freqs, sizes = max_frequencies_from_data(catalog, query)
    for relation in query.relations:
        assert sizes[relation] == len(catalog.table(relation))
    for edge in query.edges:
        for relation, attr in (
            (edge.parent, edge.parent_attr),
            (edge.child, edge.child_attr),
        ):
            column = catalog.table(relation).column(attr)
            _, counts = np.unique(column, return_counts=True)
            assert max_freqs[(relation, attr)] == int(counts.max())


@pytest.mark.parametrize("num_shards", [2, 8])
def test_max_group_size_sharded_equals_monolithic(num_shards):
    catalog = make_small_catalog()
    query = make_running_example_query()
    sharded = partitioned_catalog(catalog, query, num_shards)
    for edge in query.edges:
        mono = catalog.hash_index(edge.child, edge.child_attr)
        part = sharded.hash_index(edge.child, edge.child_attr)
        assert part.max_group_size == mono.max_group_size


def test_max_group_size_empty_index():
    catalog = Catalog()
    catalog.add_table("E", {"x": np.array([], dtype=np.int64)})
    assert catalog.hash_index("E", "x").max_group_size == 0


# ----------------------------------------------------------------------
# Bound soundness
# ----------------------------------------------------------------------


def _prefix_query(query, order, length):
    """The sub-join-tree covering the driver plus ``order[:length]``."""
    kept = {query.root, *order[:length]}
    edges = [edge for edge in query.edges if edge.child in kept]
    return JoinQuery(query.root, edges)


def test_prefix_bounds_dominate_true_prefix_cardinalities():
    catalog = make_small_catalog()
    query = make_running_example_query()
    plan = Planner(catalog, robustness="bounded").plan(query)
    assert len(plan.prefix_bounds) == len(plan.order)
    for position in range(1, len(plan.order) + 1):
        prefix = _prefix_query(query, plan.order, position)
        truth = len(brute_force_join(catalog, prefix))
        assert truth <= plan.prefix_bounds[position - 1]


def test_peak_intermediate_tuples_within_bound():
    catalog = make_small_catalog()
    query = make_running_example_query()
    plan = Planner(catalog, robustness="bounded").plan(
        query, mode=ExecutionMode.STD
    )
    result = plan.execute()
    assert result.counters.peak_intermediate_tuples <= max(plan.prefix_bounds)


def test_prefix_bounds_are_nondecreasing_products():
    stats = bound_stats_for_rooting(
        make_running_example_query(),
        {
            ("R1", "B"): 2, ("R2", "B"): 3, ("R2", "C"): 1, ("R3", "C"): 2,
            ("R2", "D"): 1, ("R4", "D"): 4, ("R1", "E"): 1, ("R5", "E"): 5,
            ("R5", "F"): 1, ("R6", "F"): 2,
        },
        {"R1": 10, "R2": 8, "R3": 6, "R4": 5, "R5": 7, "R6": 4},
    )
    bounds = prefix_cardinality_bounds(
        stats, ["R2", "R3", "R4", "R5", "R6"]
    )
    assert bounds == (30.0, 60.0, 240.0, 1200.0, 2400.0)
    assert list(bounds) == sorted(bounds)  # mf >= 1: never shrinks


# ----------------------------------------------------------------------
# The regret gate
# ----------------------------------------------------------------------


def test_worst_case_cost_discriminates_orders():
    catalog = make_adversarial_catalog()
    query = adversarial_query()
    max_freqs, sizes = max_frequencies_from_data(catalog, query)
    bound_stats = bound_stats_for_rooting(query, max_freqs, sizes)
    heavy_first = worst_case_cost(query, bound_stats, ["H", "S"])
    selective_first = worst_case_cost(query, bound_stats, ["S", "H"])
    assert heavy_first > REGRET_FACTOR * selective_first


def test_bounded_gate_swaps_catastrophic_order():
    catalog = make_adversarial_catalog()
    corrupted = StatsCorruptingCatalog(catalog, CORRUPTION)
    query = adversarial_query()
    off = Planner(corrupted, robustness="off").plan(
        query, mode=ExecutionMode.STD
    )
    bounded = Planner(
        corrupted, robustness="bounded", regret_factor=REGRET_FACTOR
    ).plan(query, mode=ExecutionMode.STD)
    assert off.order == ["H", "S"]  # the lie worked on the off planner
    assert bounded.order == ["S", "H"]  # the gate did not buy it
    assert bounded.worst_case_bound <= REGRET_FACTOR * min(
        bounded.worst_case_bound, off.worst_case_bound or np.inf
    )


def test_off_mode_corrupted_plan_is_really_bad():
    """Fault-injection regression: the injected error must *matter*.

    Guards the test harness itself — if the corruption stopped fooling
    the off-mode planner (or the data stopped punishing the fooled
    order), every downstream "bounded fixes it" assertion would pass
    vacuously.
    """
    catalog = make_adversarial_catalog()
    corrupted = StatsCorruptingCatalog(catalog, CORRUPTION)
    query = adversarial_query()
    true_optimum = Planner(catalog, robustness="off").plan(
        query, mode=ExecutionMode.STD
    )
    off = Planner(corrupted, robustness="off").plan(
        query, mode=ExecutionMode.STD
    )
    bounded = Planner(
        corrupted, robustness="bounded", regret_factor=REGRET_FACTOR
    ).plan(query, mode=ExecutionMode.STD)
    optimum_cost = executed_cost(true_optimum)
    off_regret = executed_cost(off) / optimum_cost
    bounded_regret = executed_cost(bounded) / optimum_cost
    assert off_regret >= 5 * REGRET_FACTOR
    assert bounded_regret <= REGRET_FACTOR


def test_bounded_keeps_order_when_regret_is_small():
    """No gratuitous swaps: with honest stats the estimated plan stays."""
    catalog = make_small_catalog()
    query = make_running_example_query()
    off = Planner(catalog, robustness="off").plan(query)
    bounded = Planner(catalog, robustness="bounded").plan(query)
    if bounded.order != off.order:
        # a swap is only legitimate when the off plan's worst case
        # genuinely exceeds the cap
        assert off.worst_case_bound == 0.0 or (
            bounded.worst_case_bound < off.worst_case_bound
        )
    # either way the bounded plan's results are identical
    assert result_tuples(
        bounded.execute(collect_output=True), query
    ) == brute_force_join(catalog, query)


def test_results_identical_across_postures():
    catalog = make_adversarial_catalog()
    corrupted = StatsCorruptingCatalog(catalog, CORRUPTION)
    query = adversarial_query()
    expected = brute_force_join(catalog, query)
    for robustness in ROBUSTNESS_CHOICES:
        plan = Planner(corrupted, robustness=robustness).plan(query)
        assert result_tuples(
            plan.execute(collect_output=True), query
        ) == expected, robustness


# ----------------------------------------------------------------------
# Fingerprints, specs, explain
# ----------------------------------------------------------------------


def test_fingerprint_covers_robustness():
    catalog = make_small_catalog()
    query = make_running_example_query()
    off = Planner(catalog, robustness="off").plan(query)
    bounded = Planner(catalog, robustness="bounded").plan(query)
    assert off.fingerprint() != bounded.fingerprint()
    # derived annotations must NOT shift the digest
    stripped = dataclasses.replace(
        bounded, prefix_bounds=(), worst_case_bound=0.0
    )
    assert stripped.fingerprint() == bounded.fingerprint()


def test_spec_roundtrip_preserves_bounds():
    catalog = make_small_catalog()
    query = make_running_example_query()
    planner = Planner(catalog, robustness="bounded")
    plan = planner.plan(query)
    spec = plan.to_spec(catalog.fingerprint())
    assert spec.robustness == "bounded"
    rehydrated = planner.rehydrate(spec, query)
    assert rehydrated.robustness == plan.robustness
    assert tuple(rehydrated.prefix_bounds) == tuple(plan.prefix_bounds)
    assert rehydrated.worst_case_bound == plan.worst_case_bound
    assert rehydrated.fingerprint() == plan.fingerprint()


def test_explain_shows_bounds():
    catalog = make_small_catalog()
    query = make_running_example_query()
    text = Planner(catalog, robustness="bounded").plan(query).explain()
    assert "ROBUSTNESS bounded" in text
    assert "ub=" in text
    off_text = Planner(catalog, robustness="off").plan(query).explain()
    assert "ROBUSTNESS" not in off_text
    assert "ub=" not in off_text


def test_cyclic_plans_carry_bounds_too():
    rng = np.random.default_rng(3)
    catalog = Catalog()
    catalog.add_table("A", {"x": rng.integers(0, 6, 30),
                            "y": rng.integers(0, 6, 30)})
    catalog.add_table("B", {"x": rng.integers(0, 6, 25),
                            "z": rng.integers(0, 6, 25)})
    catalog.add_table("C", {"y": rng.integers(0, 6, 20),
                            "z": rng.integers(0, 6, 20)})
    sql = (
        "select * from A, B, C "
        "where A.x = B.x and A.y = C.y and B.z = C.z"
    )
    plan = Planner(catalog, robustness="bounded").plan(
        sql, cyclic_execution="tree_filter"
    )
    assert plan.is_cyclic
    assert plan.robustness == "bounded"
    assert len(plan.prefix_bounds) == len(plan.order)
    assert np.isfinite(plan.worst_case_bound)
