"""BVP cost-model tests against the Section 3.5 closed forms."""

import pytest

from repro.core import bvp_plan_cost, com_probes_per_join, std_probes_per_join

from tests.helpers import RUNNING_EXAMPLE_FO as FO
from tests.helpers import RUNNING_EXAMPLE_M as M

N = 1000.0
EPS = 0.05
ORDER = ["R2", "R3", "R5", "R4", "R6"]


def test_bvp_std_bitvector_probes_formula(
    running_example_query, running_example_stats
):
    """The bitvector-probe expression of Section 3.5, verbatim."""
    cost = bvp_plan_cost(
        running_example_query, running_example_stats, ORDER,
        eps=EPS, factorized=False,
    )
    expected = N * (
        1
        + (M["R2"] + EPS)
        + M["R2"] * (M["R5"] + EPS) * FO["R2"]
        + M["R2"] * (M["R5"] + EPS) * FO["R2"] * (M["R3"] + EPS)
        + M["R2"] * M["R5"] * FO["R2"] * M["R3"] * FO["R3"]
        * (M["R4"] + EPS) * FO["R5"]
    )
    assert cost.bitvector_probes == pytest.approx(expected)


def test_bvp_std_hash_probes_formula(
    running_example_query, running_example_stats
):
    """The hash-probe expression of Section 3.5, verbatim."""
    cost = bvp_plan_cost(
        running_example_query, running_example_stats, ORDER,
        eps=EPS, factorized=False,
    )
    expected = N * (
        (M["R2"] + EPS) * (M["R5"] + EPS)
        + M["R2"] * (M["R5"] + EPS) * FO["R2"] * (M["R3"] + EPS) * (M["R4"] + EPS)
        + M["R2"] * (M["R5"] + EPS) * FO["R2"] * M["R3"] * (M["R4"] + EPS) * FO["R3"]
        + M["R2"] * M["R5"] * FO["R2"] * M["R3"] * (M["R4"] + EPS)
        * FO["R3"] * FO["R5"] * (M["R6"] + EPS)
        + M["R2"] * FO["R2"] * M["R3"] * FO["R3"] * M["R4"] * FO["R4"]
        * M["R5"] * FO["R5"] * (M["R6"] + EPS)
    )
    assert cost.hash_probes == pytest.approx(expected)


def test_bvp_com_r5_probe_count(
    running_example_query, running_example_stats
):
    """Section 3.5's COM+BVP probe count into R5."""
    cost = bvp_plan_cost(
        running_example_query, running_example_stats, ORDER,
        eps=EPS, factorized=True,
    )
    expected = N * M["R2"] * (M["R5"] + EPS) * (
        1 - (1 - M["R3"] * (M["R4"] + EPS)) ** FO["R2"]
    )
    assert cost.hash_probes_by_relation["R5"] == pytest.approx(expected)


def test_eps_zero_reduces_hash_probes_to_base_models(
    running_example_query, running_example_stats
):
    """With a perfect bitvector, BVP hash probes shrink below the base
    model's (tuples are pruned before probing) and never exceed them."""
    q, st = running_example_query, running_example_stats
    std_cost = bvp_plan_cost(q, st, ORDER, eps=0.0, factorized=False)
    std_base = std_probes_per_join(q, st, ORDER)
    for relation in ORDER:
        assert (
            std_cost.hash_probes_by_relation[relation]
            <= std_base[relation] + 1e-9
        )
    com_cost = bvp_plan_cost(q, st, ORDER, eps=0.0, factorized=True)
    com_base = com_probes_per_join(q, st, ORDER)
    for relation in ORDER:
        assert (
            com_cost.hash_probes_by_relation[relation]
            <= com_base[relation] + 1e-9
        )


def test_higher_eps_means_more_hash_probes(
    running_example_query, running_example_stats
):
    q, st = running_example_query, running_example_stats
    costs = [
        bvp_plan_cost(q, st, ORDER, eps=eps, factorized=False).hash_probes
        for eps in (0.0, 0.05, 0.2)
    ]
    assert costs[0] < costs[1] < costs[2]


def test_eps_one_saturates_to_std(
    running_example_query, running_example_stats
):
    """A useless bitvector (all bits set) prunes nothing."""
    q, st = running_example_query, running_example_stats
    cost = bvp_plan_cost(q, st, ORDER, eps=1.0, factorized=False)
    base = std_probes_per_join(q, st, ORDER)
    for relation in ORDER:
        assert cost.hash_probes_by_relation[relation] == pytest.approx(
            base[relation]
        )


def test_bvp_com_flat_output_expansion(
    running_example_query, running_example_stats
):
    from repro.core import expected_output_size

    q, st = running_example_query, running_example_stats
    flat = bvp_plan_cost(q, st, ORDER, eps=EPS, factorized=True,
                         flat_output=True)
    fact = bvp_plan_cost(q, st, ORDER, eps=EPS, factorized=True,
                         flat_output=False)
    assert flat.tuples_generated - fact.tuples_generated == pytest.approx(
        expected_output_size(q, st)
    )
