"""Memoized exhaustive enumeration must match the unmemoized DP exactly."""

import pytest

from repro.core.costmodel import CostMemo
from repro.core.optimizer import exhaustive_optimal
from repro.modes import ExecutionMode
from repro.workloads.random_trees import random_join_tree, random_stats
from repro.workloads.shapes import paper_snowflake_3_2, star
from tests.helpers import make_running_example_query, make_running_example_stats

NON_SJ_MODES = [m for m in ExecutionMode.all_modes() if not m.uses_semijoin]


@pytest.mark.parametrize("mode", NON_SJ_MODES)
def test_memo_identical_on_running_example(mode):
    query = make_running_example_query()
    stats = make_running_example_stats()
    plain = exhaustive_optimal(query, stats, mode=mode, memoize=False)
    memo = exhaustive_optimal(query, stats, mode=mode, memoize=True)
    assert memo.order == plain.order
    assert memo.cost == plain.cost  # bit-identical, not approximately


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("mode", NON_SJ_MODES)
def test_memo_identical_on_random_trees(seed, mode):
    query = random_join_tree(max_nodes=9, seed=seed)
    stats = random_stats(query, (0.05, 0.9), seed=seed + 100)
    plain = exhaustive_optimal(query, stats, mode=mode, memoize=False)
    memo = exhaustive_optimal(query, stats, mode=mode, memoize=True)
    assert memo.order == plain.order
    assert memo.cost == plain.cost


def test_memo_identical_on_star():
    query = star(8)
    stats = random_stats(query, (0.1, 0.6), seed=7)
    for mode in NON_SJ_MODES:
        plain = exhaustive_optimal(query, stats, mode=mode, memoize=False)
        memo = exhaustive_optimal(query, stats, mode=mode, memoize=True)
        assert (memo.order, memo.cost) == (plain.order, plain.cost)


def test_memo_identical_with_custom_eps_and_probe_costs():
    query = paper_snowflake_3_2()
    stats = random_stats(query, (0.1, 0.5), seed=3)
    stats.probe_costs.update(
        {rel: 1.0 + i for i, rel in enumerate(query.non_root_relations)}
    )
    for eps in (0.0, 0.05):
        plain = exhaustive_optimal(
            query, stats, mode=ExecutionMode.BVP_COM, eps=eps, memoize=False
        )
        memo = exhaustive_optimal(
            query, stats, mode=ExecutionMode.BVP_COM, eps=eps, memoize=True
        )
        assert (memo.order, memo.cost) == (plain.order, plain.cost)


def test_cost_memo_structure():
    query = make_running_example_query()
    memo = CostMemo(query)
    # one bit per relation, subtree masks contain the node's own bit
    assert len(memo.bit) == query.num_relations
    for node in query.preorder():
        assert memo.subtree_mask[node] & memo.bit[node]
    # the root's subtree covers everything
    full = memo.subtree_mask[query.root]
    for node in query.preorder():
        assert memo.subtree_mask[node] & full == memo.subtree_mask[node]
    # pseudo nodes are assigned fresh bits on demand
    mask = memo.mask_of(["~bv:R3", "R2"])
    assert mask & memo.bit["R2"]
    assert memo.bit["~bv:R3"] not in (0, memo.bit["R2"])
