"""The optimizer-scaling subsystem: IDP blocks, beam search, auto policy."""

import time

import pytest

from repro.core import (
    AUTO_EXHAUSTIVE_MAX_RELATIONS,
    AUTO_IDP_MAX_RELATIONS,
    CostMemo,
    beam_order,
    choose_optimizer,
    exhaustive_optimal,
    idp_order,
    incremental_order_cost,
)
from repro.planner import Planner
from repro.workloads.large_joins import (
    chain_query,
    large_query_stats,
    random_tree_query,
    star_query,
)
from repro.workloads.random_trees import random_join_tree, random_stats


def small_cases(max_nodes=10, seeds=range(6)):
    for seed in seeds:
        query = random_join_tree(max_nodes=max_nodes, seed=seed)
        yield query, random_stats(query, (0.1, 0.5), seed=seed)


# ----------------------------------------------------------------------
# IDP
# ----------------------------------------------------------------------


def test_idp_full_block_bit_identical_to_exhaustive():
    for query, stats in small_cases():
        exact = exhaustive_optimal(query, stats)
        idp = idp_order(query, stats, block_size=query.num_relations)
        assert idp.order == exact.order
        assert idp.cost == exact.cost  # bit-identical, not approx


def test_idp_small_blocks_valid_and_bounded_below_by_exhaustive():
    for query, stats in small_cases():
        exact = exhaustive_optimal(query, stats)
        for block_size in (1, 2, 3):
            plan = idp_order(query, stats, block_size=block_size)
            assert query.is_valid_order(plan.order)
            assert plan.cost >= exact.cost - 1e-9


def test_idp_cost_matches_incremental_costing_of_its_order():
    for query, stats in small_cases(seeds=range(3)):
        plan = idp_order(query, stats, block_size=3)
        recosted = incremental_order_cost(query, stats, plan.order)
        assert recosted == pytest.approx(plan.cost, rel=1e-12)


def test_idp_block_size_validated():
    query = chain_query(4)
    stats = large_query_stats(query)
    with pytest.raises(ValueError, match="block_size"):
        idp_order(query, stats, block_size=0)


def test_idp_semijoin_mode_delegates_to_sj_optimizer():
    query = chain_query(5)
    stats = large_query_stats(query, seed=7)
    from repro.core import optimize_sj

    sj = optimize_sj(query, stats, factorized=True)
    assert idp_order(query, stats, mode="SJ+COM").order == sj.order


# ----------------------------------------------------------------------
# Beam
# ----------------------------------------------------------------------


def test_beam_valid_bounded_and_deterministic():
    for query, stats in small_cases():
        exact = exhaustive_optimal(query, stats)
        for width in (1, 4):
            a = beam_order(query, stats, beam_width=width)
            b = beam_order(query, stats, beam_width=width)
            assert query.is_valid_order(a.order)
            assert a.cost >= exact.cost - 1e-9
            assert a.order == b.order and a.cost == b.cost


def test_beam_wide_enough_recovers_the_optimum_on_chains():
    # A chain has at most n connected prefixes per length, so a beam
    # covering them all is the full DP.
    query = chain_query(8)
    stats = large_query_stats(query, seed=3)
    exact = exhaustive_optimal(query, stats)
    beam = beam_order(query, stats, beam_width=8)
    assert beam.cost == pytest.approx(exact.cost, rel=1e-12)


def test_beam_width_validated():
    query = chain_query(4)
    stats = large_query_stats(query)
    with pytest.raises(ValueError, match="beam_width"):
        beam_order(query, stats, beam_width=0)


def test_shared_memo_reuse_is_value_transparent():
    query = random_tree_query(9, seed=5)
    stats = large_query_stats(query, seed=5)
    memo = CostMemo(query)
    fresh = idp_order(query, stats, block_size=4)
    shared = idp_order(query, stats, block_size=4, memoize=memo)
    also_shared = beam_order(query, stats, beam_width=4, memoize=memo)
    assert shared.order == fresh.order and shared.cost == fresh.cost
    assert also_shared.order == beam_order(query, stats, beam_width=4).order


# ----------------------------------------------------------------------
# Auto policy
# ----------------------------------------------------------------------


def test_choose_optimizer_crossovers():
    assert choose_optimizer(2) == "exhaustive"
    assert choose_optimizer(AUTO_EXHAUSTIVE_MAX_RELATIONS) == "exhaustive"
    assert choose_optimizer(AUTO_EXHAUSTIVE_MAX_RELATIONS + 1) == "idp"
    assert choose_optimizer(AUTO_IDP_MAX_RELATIONS) == "idp"
    assert choose_optimizer(AUTO_IDP_MAX_RELATIONS + 1) == "beam"
    assert choose_optimizer(64) == "beam"


def test_planner_resolve_optimizer():
    assert Planner.resolve_optimizer("auto", 6) == "exhaustive"
    assert Planner.resolve_optimizer("auto", 24) == "idp"
    assert Planner.resolve_optimizer("auto", 60) == "beam"
    # explicit choices resolve to themselves regardless of size
    assert Planner.resolve_optimizer("beam", 3) == "beam"
    assert Planner.resolve_optimizer("survival", 60) == "survival"


# ----------------------------------------------------------------------
# Planner integration (prebuilt stats: no catalog data needed)
# ----------------------------------------------------------------------


def _plan_with(optimizer, query, stats, mode="COM"):
    from repro.storage import Catalog

    planner = Planner(Catalog())
    return planner.plan(query, mode=mode, optimizer=optimizer, stats=stats)


def test_planner_accepts_idp_beam_and_auto():
    query = random_tree_query(10, seed=2)
    stats = large_query_stats(query, seed=2)
    for optimizer in ("idp", "beam", "auto"):
        plan = _plan_with(optimizer, query, stats)
        assert query.is_valid_order(plan.order)
    exact = _plan_with("exhaustive", query, stats)
    # 10 relations: auto resolves to exhaustive -> identical plan
    auto = _plan_with("auto", query, stats)
    assert auto.order == exact.order


def test_planner_rejects_unknown_optimizer_still():
    query = chain_query(4)
    stats = large_query_stats(query)
    with pytest.raises(ValueError, match="optimizer"):
        _plan_with("bogus", query, stats)


@pytest.mark.parametrize("build", [chain_query, star_query])
def test_auto_plans_60_relations_under_a_second(build):
    query = build(60)
    stats = large_query_stats(query, m_range=(0.1, 0.6), seed=11)
    start = time.perf_counter()
    plan = _plan_with("auto", query, stats)
    elapsed = time.perf_counter() - start
    assert query.is_valid_order(plan.order)
    assert elapsed < 1.0, f"auto planning took {elapsed:.2f}s"


def test_auto_large_plan_not_much_worse_than_wide_beam():
    # Sanity guard on plan quality at scale: the auto-selected beam
    # order is within 2x of a much wider (slower) beam's cost.
    query = star_query(48)
    stats = large_query_stats(query, seed=13)
    auto = beam_order(query, stats, beam_width=8)
    wide = beam_order(query, stats, beam_width=48)
    assert auto.cost <= 2.0 * wide.cost
