"""Optimizer tests: Algorithm 1 DP, greedy heuristics, SJ optimizer."""

import pytest

from repro.core import (
    exhaustive_optimal,
    greedy_order,
    optimize_sj,
    best_driver,
)
from repro.core.costmodel import com_probes_per_join, plan_cost
from repro.core.optimizer import GREEDY_HEURISTICS
from repro.modes import ExecutionMode
from repro.workloads.random_trees import random_join_tree, random_stats


def _brute_force_best(query, stats, mode, eps=0.01):
    best_cost, best_order = None, None
    for order in query.all_orders():
        cost = plan_cost(query, stats, order, mode, eps=eps,
                         flat_output=False)
        total = (
            cost.hash_probes + 0.5 * cost.bitvector_probes
            + 0.5 * cost.semijoin_probes
            + cost.tuples_generated / 14.0
        )
        if best_cost is None or total < best_cost:
            best_cost, best_order = total, order
    return best_cost, best_order


class TestExhaustiveDP:
    def test_matches_brute_force_com(
        self, running_example_query, running_example_stats
    ):
        plan = exhaustive_optimal(
            running_example_query, running_example_stats,
            mode=ExecutionMode.COM,
        )
        probes = com_probes_per_join(
            running_example_query, running_example_stats, plan.order
        )
        assert plan.cost == pytest.approx(sum(probes.values()))
        best = min(
            sum(com_probes_per_join(
                running_example_query, running_example_stats, order
            ).values())
            for order in running_example_query.all_orders()
        )
        assert plan.cost == pytest.approx(best)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force_on_random_trees(self, seed):
        query = random_join_tree(max_nodes=7, seed=seed)
        stats = random_stats(query, (0.1, 0.9), (1.0, 8.0), seed=seed + 1)
        plan = exhaustive_optimal(query, stats)
        best = min(
            sum(com_probes_per_join(query, stats, order).values())
            for order in query.all_orders()
        )
        assert plan.cost == pytest.approx(best)
        assert query.is_valid_order(plan.order)

    @pytest.mark.parametrize("mode", [ExecutionMode.BVP_COM,
                                      ExecutionMode.BVP_STD])
    @pytest.mark.parametrize("seed", range(3))
    def test_bvp_dp_not_worse_than_any_order(self, mode, seed):
        """Theorem 3.3: with the driver fixed, the DP is optimal for
        the bitvector cost model too.  The DP's internal check
        sequencing is canonical (ascending m), so we verify optimality
        against full-plan costs computed with the same convention via
        the DP value itself: no enumerated order may beat it."""
        query = random_join_tree(max_nodes=6, seed=seed + 50)
        stats = random_stats(query, (0.1, 0.7), (1.0, 6.0), seed=seed + 51)
        plan = exhaustive_optimal(query, stats, mode=mode, eps=0.02)
        # Re-cost the DP's chosen order through the same incremental
        # machinery used during search, for every enumerated order.
        from repro.core.optimizer import _delta_cost
        from repro.core.costmodel import CostWeights

        def dp_cost(order):
            joined = {query.root}
            total = 0.0
            for relation in order:
                total += _delta_cost(query, stats, joined, relation, mode,
                                     0.02, CostWeights())
                joined.add(relation)
            return total

        assert plan.cost == pytest.approx(dp_cost(plan.order))
        for order in query.all_orders():
            assert plan.cost <= dp_cost(order) + 1e-9

    def test_dp_never_worse_than_greedy(self):
        for seed in range(4):
            query = random_join_tree(max_nodes=10, seed=seed + 10)
            stats = random_stats(query, (0.05, 0.5), seed=seed + 11)
            optimal = exhaustive_optimal(query, stats)
            for heuristic in GREEDY_HEURISTICS:
                greedy = greedy_order(query, stats, heuristic)
                greedy_cost = sum(com_probes_per_join(
                    query, stats, greedy.order
                ).values())
                assert optimal.cost <= greedy_cost + 1e-9


class TestGreedyHeuristics:
    def test_produces_valid_orders(
        self, running_example_query, running_example_stats
    ):
        for heuristic in GREEDY_HEURISTICS:
            plan = greedy_order(
                running_example_query, running_example_stats, heuristic
            )
            assert running_example_query.is_valid_order(plan.order)

    def test_unknown_heuristic_rejected(
        self, running_example_query, running_example_stats
    ):
        with pytest.raises(ValueError, match="unknown heuristic"):
            greedy_order(running_example_query, running_example_stats, "nope")

    def test_rank_ordering_sorts_star_by_selectivity(self):
        from repro.core.robustness import star_query
        from repro.core import EdgeStats, QueryStats

        query = star_query(4)
        stats = QueryStats(1.0, {
            "D1": EdgeStats(0.9, 5.0),   # s = 4.5
            "D2": EdgeStats(0.2, 2.0),   # s = 0.4
            "D3": EdgeStats(0.5, 1.0),   # s = 0.5
            "D4": EdgeStats(0.99, 1.0),  # s = 0.99
        })
        plan = greedy_order(query, stats, "rank")
        assert plan.order == ["D2", "D3", "D4", "D1"]

    def test_survival_sorts_star_by_match_probability(self):
        from repro.core.robustness import star_query
        from repro.core import EdgeStats, QueryStats

        query = star_query(4)
        stats = QueryStats(1.0, {
            "D1": EdgeStats(0.9, 5.0),
            "D2": EdgeStats(0.2, 2.0),
            "D3": EdgeStats(0.5, 1.0),
            "D4": EdgeStats(0.3, 9.0),
        })
        plan = greedy_order(query, stats, "survival")
        assert plan.order == ["D2", "D4", "D3", "D1"]

    def test_survival_close_to_optimal_on_random_trees(self):
        """Figure 10's headline: survival is near-optimal."""
        ratios = []
        for seed in range(10):
            query = random_join_tree(max_nodes=10, seed=seed + 30)
            stats = random_stats(query, (0.1, 0.5), seed=seed + 31)
            optimal = exhaustive_optimal(query, stats)
            greedy = greedy_order(query, stats, "survival")
            greedy_cost = sum(com_probes_per_join(
                query, stats, greedy.order
            ).values())
            ratios.append(greedy_cost / optimal.cost)
        assert sum(ratios) / len(ratios) < 1.1


class TestSJOptimizer:
    def test_child_orders_sorted_by_m_prime(
        self, running_example_query, running_example_stats
    ):
        from repro.core import reduction_ratios

        plan = optimize_sj(
            running_example_query, running_example_stats, factorized=True
        )
        _, m_primes = reduction_ratios(
            running_example_query, running_example_stats
        )
        for node, children in plan.child_orders.items():
            values = [m_primes[c] for c in children]
            assert values == sorted(values)

    def test_order_valid_and_mode_set(
        self, running_example_query, running_example_stats
    ):
        for factorized in (True, False):
            plan = optimize_sj(
                running_example_query, running_example_stats,
                factorized=factorized,
            )
            assert running_example_query.is_valid_order(plan.order)
            expected_mode = (
                ExecutionMode.SJ_COM if factorized else ExecutionMode.SJ_STD
            )
            assert plan.mode == expected_mode

    def test_sj_std_order_optimal_among_all(
        self, running_example_query, running_example_stats
    ):
        """Section 3.6: increasing fo' is optimal for SJ+STD."""
        from repro.core import sj_plan_cost

        plan = optimize_sj(
            running_example_query, running_example_stats, factorized=False
        )
        chosen = sj_plan_cost(
            running_example_query, running_example_stats, plan.order,
            factorized=False, flat_output=False,
        ).hash_probes
        for order in running_example_query.all_orders():
            other = sj_plan_cost(
                running_example_query, running_example_stats, order,
                factorized=False, flat_output=False,
            ).hash_probes
            assert chosen <= other + 1e-9


class TestBestDriver:
    def test_tries_all_roots(self, running_example_query, running_example_stats):
        from repro.core import EdgeStats, QueryStats

        def stats_for(rooted):
            # Direction-agnostic synthetic stats: every edge m=.5, fo=2.
            return QueryStats(100.0, {
                rel: EdgeStats(0.5, 2.0) for rel in rooted.non_root_relations
            })

        plan = best_driver(running_example_query, stats_for)
        assert plan is not None
        assert plan.query.is_valid_order(plan.order)
        # With symmetric stats, the chosen plan's cost can't exceed the
        # original rooting's cost.
        original = exhaustive_optimal(
            running_example_query, stats_for(running_example_query)
        )
        assert plan.cost <= original.cost + 1e-9
