"""Heterogeneous probe costs (web services / expensive predicates).

The cost model carries a per-operator probe cost ``c_i`` (Section 2.1);
these tests pin down that the optimizers respect it.
"""

import pytest

from repro.core import EdgeStats, QueryStats, exhaustive_optimal, greedy_order
from repro.core.robustness import star_query


def _stats(prices=None):
    return QueryStats(
        100.0,
        {
            "D1": EdgeStats(0.5, 2.0),
            "D2": EdgeStats(0.5, 2.0),
            "D3": EdgeStats(0.5, 2.0),
        },
        probe_costs=prices or {},
    )


def test_expensive_operator_deferred():
    """With identical selectivities, the pricey operator goes last:
    later positions see fewer surviving tuples."""
    query = star_query(3)
    plan = exhaustive_optimal(query, _stats({"D2": 100.0}))
    assert plan.order[-1] == "D2"


def test_cheap_operator_first():
    query = star_query(3)
    plan = exhaustive_optimal(query, _stats({"D3": 0.01}))
    assert plan.order[0] == "D3"


def test_unit_costs_cost_matches_probe_sum():
    from repro.core.costmodel import com_probes_per_join

    query = star_query(3)
    stats = _stats()
    plan = exhaustive_optimal(query, stats)
    probes = com_probes_per_join(query, stats, plan.order)
    assert plan.cost == pytest.approx(sum(probes.values()))


def test_priced_cost_is_weighted_probe_sum():
    from repro.core.costmodel import com_probes_per_join

    prices = {"D1": 2.0, "D2": 5.0, "D3": 0.5}
    query = star_query(3)
    stats = _stats(prices)
    plan = exhaustive_optimal(query, stats)
    probes = com_probes_per_join(query, stats, plan.order)
    expected = sum(prices[rel] * p for rel, p in probes.items())
    assert plan.cost == pytest.approx(expected)


def test_rank_heuristic_uses_cost():
    """Rank ordering sorts by (s - 1) / c: a pricey operator with the
    same selectivity has a higher (less negative) rank and goes later."""
    query = star_query(2)
    stats = QueryStats(10.0, {
        "D1": EdgeStats(0.5, 1.0),
        "D2": EdgeStats(0.5, 1.0),
    }, probe_costs={"D1": 10.0, "D2": 1.0})
    plan = greedy_order(query, stats, "rank")
    assert plan.order == ["D2", "D1"]


def test_pricing_can_flip_the_optimal_order():
    query = star_query(2)
    base = QueryStats(10.0, {
        "D1": EdgeStats(0.3, 1.0),   # more selective
        "D2": EdgeStats(0.6, 1.0),
    })
    flipped = QueryStats(10.0, base.edge_stats, probe_costs={"D1": 50.0})
    assert exhaustive_optimal(query, base).order == ["D1", "D2"]
    assert exhaustive_optimal(query, flipped).order == ["D2", "D1"]
