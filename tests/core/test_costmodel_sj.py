"""SJ cost-model tests: Theorems 3.4 and 3.5, phase-1 probe counts."""

import pytest

from repro.core import (
    adjusted_fanout,
    adjusted_match_probability,
    reduction_ratios,
    sj_phase1_cost,
    sj_phase2_fanouts,
    sj_plan_cost,
)

from tests.helpers import RUNNING_EXAMPLE_FO as FO
from tests.helpers import RUNNING_EXAMPLE_M as M


class TestTheorem34:
    def test_formulas(self):
        m, fo, ratio = 0.6, 4.0, 0.3
        hit = 1 - (1 - ratio) ** fo
        assert adjusted_match_probability(m, fo, ratio) == pytest.approx(m * hit)
        assert adjusted_fanout(fo, ratio) == pytest.approx(fo * ratio / hit)

    def test_selectivity_identity(self):
        """s' = ratio * s, matching classical selectivity scaling."""
        for m, fo, ratio in [(0.5, 3.0, 0.4), (0.9, 1.5, 0.1), (0.2, 8.0, 0.7)]:
            s_prime = (
                adjusted_match_probability(m, fo, ratio)
                * adjusted_fanout(fo, ratio)
            )
            assert s_prime == pytest.approx(ratio * m * fo)

    def test_no_reduction_is_identity(self):
        assert adjusted_match_probability(0.5, 3.0, 1.0) == pytest.approx(0.5)
        assert adjusted_fanout(3.0, 1.0) == pytest.approx(3.0)

    def test_full_reduction_kills_everything(self):
        assert adjusted_match_probability(0.5, 3.0, 0.0) == 0.0
        assert adjusted_fanout(3.0, 0.0) == 0.0

    def test_adjusted_values_bounded(self):
        for ratio in (0.1, 0.5, 0.9):
            assert adjusted_match_probability(0.7, 5.0, ratio) <= 0.7
            assert 1.0 <= adjusted_fanout(5.0, ratio) <= 5.0


class TestReductionRatios:
    def test_running_example(self, running_example_query, running_example_stats):
        ratios, m_primes = reduction_ratios(
            running_example_query, running_example_stats
        )
        # Leaves are never reduced.
        for leaf in ("R3", "R4", "R6"):
            assert ratios[leaf] == 1.0
        # m' against unreduced leaves is just m.
        assert m_primes["R3"] == pytest.approx(M["R3"])
        assert m_primes["R4"] == pytest.approx(M["R4"])
        assert m_primes["R6"] == pytest.approx(M["R6"])
        # R2's reduction: product of its children's m'.
        assert ratios["R2"] == pytest.approx(M["R3"] * M["R4"])
        assert ratios["R5"] == pytest.approx(M["R6"])
        # m' from R1 into the reduced R2 (Theorem 3.4).
        expected = M["R2"] * (1 - (1 - M["R3"] * M["R4"]) ** FO["R2"])
        assert m_primes["R2"] == pytest.approx(expected)
        # Root ratio: product over its children.
        assert ratios["R1"] == pytest.approx(
            m_primes["R2"] * m_primes["R5"]
        )


class TestPhase1Cost:
    def test_paper_example_probe_count(
        self, running_example_query, running_example_stats
    ):
        """|R2| + m3 |R2| + |R5| + |R1| + (1-(1-m3 m4)^fo2) m2 |R1|."""
        sizes = running_example_stats.relation_sizes
        cost, _ = sj_phase1_cost(
            running_example_query, running_example_stats,
            child_orders={"R2": ["R3", "R4"], "R1": ["R2", "R5"],
                          "R5": ["R6"]},
        )
        expected = (
            sizes["R2"]
            + M["R3"] * sizes["R2"]
            + sizes["R5"]
            + sizes["R1"]
            + (1 - (1 - M["R3"] * M["R4"]) ** FO["R2"]) * M["R2"] * sizes["R1"]
        )
        assert cost.semijoin_probes == pytest.approx(expected)

    def test_default_child_order_is_increasing_m_prime(
        self, running_example_query, running_example_stats
    ):
        """The optimal order never costs more than any explicit order."""
        default_cost, _ = sj_phase1_cost(
            running_example_query, running_example_stats
        )
        import itertools

        for r1_order in itertools.permutations(["R2", "R5"]):
            for r2_order in itertools.permutations(["R3", "R4"]):
                cost, _ = sj_phase1_cost(
                    running_example_query, running_example_stats,
                    child_orders={
                        "R1": list(r1_order), "R2": list(r2_order),
                        "R5": ["R6"],
                    },
                )
                assert (
                    default_cost.semijoin_probes
                    <= cost.semijoin_probes + 1e-9
                )

    def test_invalid_child_order_rejected(
        self, running_example_query, running_example_stats
    ):
        with pytest.raises(ValueError, match="child order"):
            sj_phase1_cost(
                running_example_query, running_example_stats,
                child_orders={"R2": ["R3"]},
            )


class TestPhase2:
    def test_fanout_adjustment(self, running_example_query, running_example_stats):
        ratios, _ = reduction_ratios(
            running_example_query, running_example_stats
        )
        fanouts = sj_phase2_fanouts(
            running_example_query, running_example_stats, ratios
        )
        expected_r2 = adjusted_fanout(FO["R2"], ratios["R2"])
        assert fanouts["R2"] == pytest.approx(expected_r2)
        # Leaves keep their full fanout (ratio 1).
        assert fanouts["R3"] == pytest.approx(FO["R3"])

    def test_theorem_35_order_independence(
        self, running_example_query, running_example_stats
    ):
        """SJ+COM phase-2 hash probes are identical for every order."""
        values = set()
        for order in running_example_query.all_orders():
            cost = sj_plan_cost(
                running_example_query, running_example_stats, order,
                factorized=True, flat_output=False,
            )
            values.add(round(cost.hash_probes, 6))
        assert len(values) == 1

    def test_sj_std_depends_on_order(
        self, running_example_query, running_example_stats
    ):
        values = set()
        for order in running_example_query.all_orders():
            cost = sj_plan_cost(
                running_example_query, running_example_stats, order,
                factorized=False, flat_output=False,
            )
            values.add(round(cost.hash_probes, 6))
        assert len(values) > 1

    def test_output_size_preserved_through_adjustment(
        self, running_example_query, running_example_stats
    ):
        """N' * prod fo' must equal N * prod (m fo): the reduction
        changes where tuples die, never the final result size."""
        from repro.core import expected_output_size

        q, st = running_example_query, running_example_stats
        ratios, _ = reduction_ratios(q, st)
        fanouts = sj_phase2_fanouts(q, st, ratios)
        reduced_driver = st.driver_size * ratios[q.root]
        product = reduced_driver
        for relation in q.non_root_relations:
            product *= fanouts[relation]
        assert product == pytest.approx(expected_output_size(q, st))

    def test_phase2_all_probes_match(self, running_example_query,
                                     running_example_stats):
        """In phase 2 every probe finds a match, so for SJ+STD the
        number of probes into the (k+1)-th operator equals the tuples
        generated by the k-th."""
        q, st = running_example_query, running_example_stats
        order = ["R2", "R3", "R5", "R4", "R6"]
        cost = sj_plan_cost(q, st, order, factorized=False)
        ratios, _ = reduction_ratios(q, st)
        fanouts = sj_phase2_fanouts(q, st, ratios)
        tuples = st.driver_size * ratios[q.root]
        for relation in order:
            assert cost.hash_probes_by_relation[relation] == pytest.approx(
                tuples
            )
            tuples *= fanouts[relation]
