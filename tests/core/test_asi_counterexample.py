"""Theorem 3.1: the COM cost function violates the ASI property.

The paper's counterexample: a driver R1 with children R2 and R3; R2 has
children R4, R5 and R3 has children R6, R7.  All m = 0.5, all fo = 1
except fo2 and fo3.  The two orders ...->R5->R6 and ...->R6->R5 swap
two subsequences that any rank function must rank identically (by
symmetry), yet their costs differ whenever fo2 != fo3 — so no rank
function can order them, i.e. ASI fails.
"""

import pytest

from repro.core import EdgeStats, JoinEdge, JoinQuery, QueryStats
from repro.core.costmodel import com_probes_per_join


def _counterexample(fo2, fo3):
    query = JoinQuery("R1", [
        JoinEdge("R1", "R2", "a", "a"),
        JoinEdge("R1", "R3", "b", "b"),
        JoinEdge("R2", "R4", "c", "c"),
        JoinEdge("R2", "R5", "d", "d"),
        JoinEdge("R3", "R6", "e", "e"),
        JoinEdge("R3", "R7", "f", "f"),
    ])
    fo = {"R2": fo2, "R3": fo3, "R4": 1.0, "R5": 1.0, "R6": 1.0, "R7": 1.0}
    stats = QueryStats(1.0, {
        rel: EdgeStats(m=0.5, fo=fo[rel]) for rel in fo
    })
    return query, stats


def _total_cost(query, stats, order):
    return sum(com_probes_per_join(query, stats, order).values())


ORDER_U_FIRST = ["R2", "R3", "R4", "R7", "R5", "R6"]
ORDER_V_FIRST = ["R2", "R3", "R4", "R7", "R6", "R5"]


def test_costs_differ_when_fanouts_differ():
    query, stats = _counterexample(fo2=2.0, fo3=6.0)
    cost_u = _total_cost(query, stats, ORDER_U_FIRST)
    cost_v = _total_cost(query, stats, ORDER_V_FIRST)
    assert cost_u != pytest.approx(cost_v)


def test_preference_flips_with_fanouts():
    """Which order wins depends on fo2 vs fo3 — fatal for any rank
    function, which (by the symmetry of U = R5 and V = R6) would have
    to rank them equal and therefore tie."""
    query_a, stats_a = _counterexample(fo2=2.0, fo3=6.0)
    query_b, stats_b = _counterexample(fo2=6.0, fo3=2.0)
    diff_a = (
        _total_cost(query_a, stats_a, ORDER_U_FIRST)
        - _total_cost(query_a, stats_a, ORDER_V_FIRST)
    )
    diff_b = (
        _total_cost(query_b, stats_b, ORDER_U_FIRST)
        - _total_cost(query_b, stats_b, ORDER_V_FIRST)
    )
    assert diff_a * diff_b < 0  # strictly opposite preferences


def test_costs_equal_when_symmetric():
    query, stats = _counterexample(fo2=4.0, fo3=4.0)
    assert _total_cost(query, stats, ORDER_U_FIRST) == pytest.approx(
        _total_cost(query, stats, ORDER_V_FIRST)
    )


def test_std_model_is_indifferent_here():
    """The classical model (probes = prefix product of s) cannot see
    the difference between the two orders — it satisfies ASI."""
    from repro.core.costmodel import std_probes_per_join

    query, stats = _counterexample(fo2=2.0, fo3=6.0)
    cost_u = sum(std_probes_per_join(query, stats, ORDER_U_FIRST).values())
    cost_v = sum(std_probes_per_join(query, stats, ORDER_V_FIRST).values())
    assert cost_u == pytest.approx(cost_v)
