"""Tests for adaptive optimizer knobs and the planning-budget ladder."""

import json

import pytest

from repro.core.adaptive import (
    adaptive_beam_width,
    adaptive_block_size,
    crossover_relations,
    load_scaling_profile,
    profile_from_record,
)
from repro.core.optimizer import PlanningBudgetExceeded, idp_order
from repro.planner import Planner
from repro.workloads.large_joins import (
    large_join_catalog,
    large_query_stats,
    star_query,
)

#: a synthetic benchmark record with a clean exponential star series
#: (1 ms at n=8 doubling per relation) and a linear-ish chain series
RECORD = {
    "knobs": {"block_size": 8, "beam_width": 8},
    "quality_vs_exhaustive": [
        {"shape": "star", "num_relations": n,
         "exhaustive_ms_median": 2.0 ** (n - 8)}
        for n in (8, 10, 12)
    ],
    "optimization_time": [
        {"shape": "chain", "num_relations": n,
         "idp_ms_median": n / 16, "beam_ms_median": n / 20,
         "exhaustive_ms_median": n / 10}
        for n in (16, 32, 64)
    ] + [
        {"shape": "star", "num_relations": n,
         "idp_ms_median": n / 2, "beam_ms_median": n / 4,
         "exhaustive_ms_median": None}
        for n in (16, 32, 64)
    ],
}


class TestProfileDerivation:
    def test_profile_keeps_shapes_separate(self):
        profile = profile_from_record(RECORD)
        assert set(profile.exhaustive_ms) == {"star", "chain"}
        assert profile.exhaustive_ms["star"][8] == 1.0
        assert profile.measured_block_size == 8

    def test_empty_record_is_no_profile(self):
        assert profile_from_record({}) is None
        assert profile_from_record({"quality_vs_exhaustive": []}) is None

    def test_worst_shape_binds_the_crossover(self):
        # The star series doubles per relation: at a per-search share of
        # budget/4, the exhaustive limit must track the star wall, not
        # the effectively-unbounded chain series.
        profile = profile_from_record(RECORD)
        exhaustive_max, idp_max = crossover_relations(profile, budget_ms=64.0)
        # 16 ms per search -> star affords n = 12 (2^4 ms)
        assert exhaustive_max == 12
        assert idp_max >= exhaustive_max

    def test_bigger_budget_never_lowers_limits(self):
        profile = profile_from_record(RECORD)
        previous = (0, 0)
        for budget in (4.0, 40.0, 400.0, 4000.0):
            limits = crossover_relations(profile, budget)
            assert limits[0] >= previous[0]
            assert limits[1] >= previous[1]
            previous = limits

    def test_static_fallbacks_without_profile(self):
        assert crossover_relations(None) == (12, 40)
        assert adaptive_block_size(None) == 8
        assert adaptive_beam_width(None) == 8

    def test_knobs_clamped_to_sane_ranges(self):
        profile = profile_from_record(RECORD)
        assert 4 <= adaptive_block_size(profile, 1.0) <= 14
        assert 4 <= adaptive_block_size(profile, 1e9) <= 14
        assert 2 <= adaptive_beam_width(profile, 1.0) <= 64
        assert 2 <= adaptive_beam_width(profile, 1e9) <= 64

    def test_load_profile_from_disk(self, tmp_path):
        path = tmp_path / "record.json"
        path.write_text(json.dumps(RECORD))
        profile = load_scaling_profile(path)
        assert profile is not None
        assert profile.exhaustive_ms["star"][12] == 16.0
        assert load_scaling_profile(tmp_path / "missing.json") is None

    def test_corrupt_profile_is_none(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert load_scaling_profile(path) is None


class TestPlannerKnobResolution:
    def test_auto_knobs_resolve_to_ints(self):
        catalog = large_join_catalog(star_query(4), seed=0)
        planner = Planner(catalog, idp_block_size="auto", beam_width="auto")
        assert isinstance(planner.idp_block_size, int)
        assert planner.idp_block_size >= 4
        assert isinstance(planner.beam_width, int)
        assert planner.beam_width >= 2

    def test_bad_knobs_rejected(self):
        catalog = large_join_catalog(star_query(4), seed=0)
        with pytest.raises(ValueError, match="idp_block_size"):
            Planner(catalog, idp_block_size=0)
        with pytest.raises(ValueError, match="beam_width"):
            Planner(catalog, beam_width="wide")
        with pytest.raises(ValueError, match="planning_budget_ms"):
            Planner(catalog, planning_budget_ms=-5)


class TestBudgetLadder:
    def test_deadline_aborts_the_dp(self):
        query = star_query(18)
        stats = large_query_stats(query, seed=1)
        with pytest.raises(PlanningBudgetExceeded):
            # a deadline in the past must abort promptly
            idp_order(query, stats, deadline=0.0)

    def test_budgeted_plan_still_valid(self):
        # An 18-relation star through optimizer="exhaustive" with a tiny
        # budget: the ladder must fall back (IDP, then beam) and still
        # produce a valid plan instead of hanging or raising.
        query = star_query(18)
        catalog = large_join_catalog(query, rows_per_relation=128, seed=2)
        planner = Planner(catalog)
        plan = planner.plan(query, mode="COM", optimizer="exhaustive",
                            planning_budget_ms=20)
        assert plan.query.is_valid_order(plan.order)

    def test_generous_budget_matches_unbudgeted(self):
        query = star_query(8)
        catalog = large_join_catalog(query, rows_per_relation=128, seed=3)
        planner = Planner(catalog)
        unbudgeted = planner.plan(query, mode="COM", optimizer="exhaustive")
        budgeted = planner.plan(query, mode="COM", optimizer="exhaustive",
                                planning_budget_ms=60_000)
        assert budgeted.order == unbudgeted.order
        assert budgeted.predicted_cost == unbudgeted.predicted_cost

    def test_budget_shifts_auto_resolution(self):
        # with the measured profile a tight budget must never resolve to
        # a *more* expensive algorithm than a generous one
        ladder = {"exhaustive": 0, "idp": 1, "beam": 2}
        tight = ladder[Planner.resolve_optimizer("auto", 14, 1.0)]
        generous = ladder[Planner.resolve_optimizer("auto", 14, 60_000.0)]
        assert tight >= generous

    def test_session_budget_in_cache_key(self):
        from repro.service import QuerySession

        query = star_query(6)
        catalog = large_join_catalog(query, rows_per_relation=64, seed=4)
        session = QuerySession(catalog)
        a = session.cache_key(query, planning_budget_ms=None)
        b = session.cache_key(query, planning_budget_ms=5)
        assert a != b
