"""The shared LRU cache (repro.core.lru)."""

import pytest

from repro.core.lru import CacheStats, LRUCache


def test_basic_get_put_and_counters():
    cache = LRUCache(capacity=2)
    assert cache.get("a") is None
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == 0.5


def test_lru_eviction_order():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")          # refresh a's recency; b is now LRU
    cache.put("c", 3)
    assert "b" not in cache
    assert "a" in cache and "c" in cache
    assert cache.stats.evictions == 1


def test_overwrite_does_not_evict():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)
    assert len(cache) == 2
    assert cache.get("a") == 10
    assert cache.stats.evictions == 0


def test_get_or_compute_only_computes_on_miss():
    cache = LRUCache(capacity=4)
    calls = []

    def compute():
        calls.append(1)
        return "value"

    assert cache.get_or_compute("k", compute) == "value"
    assert cache.get_or_compute("k", compute) == "value"
    assert len(calls) == 1
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_clear_counts_invalidations():
    cache = LRUCache(capacity=4)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.invalidations == 2


def test_unbounded_capacity():
    cache = LRUCache(capacity=None)
    for i in range(1000):
        cache.put(i, i)
    assert len(cache) == 1000
    assert cache.stats.evictions == 0


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        LRUCache(capacity=0)


def test_cache_stats_repr_and_empty_rate():
    stats = CacheStats()
    assert stats.hit_rate == 0.0
    assert "hits=0" in repr(stats)
