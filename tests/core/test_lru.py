"""The shared LRU cache (repro.core.lru)."""

import pytest

from repro.core.lru import CacheStats, LRUCache


def test_basic_get_put_and_counters():
    cache = LRUCache(capacity=2)
    assert cache.get("a") is None
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == 0.5


def test_lru_eviction_order():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")          # refresh a's recency; b is now LRU
    cache.put("c", 3)
    assert "b" not in cache
    assert "a" in cache and "c" in cache
    assert cache.stats.evictions == 1


def test_overwrite_does_not_evict():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)
    assert len(cache) == 2
    assert cache.get("a") == 10
    assert cache.stats.evictions == 0


def test_get_or_compute_only_computes_on_miss():
    cache = LRUCache(capacity=4)
    calls = []

    def compute():
        calls.append(1)
        return "value"

    assert cache.get_or_compute("k", compute) == "value"
    assert cache.get_or_compute("k", compute) == "value"
    assert len(calls) == 1
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_clear_counts_invalidations():
    cache = LRUCache(capacity=4)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.invalidations == 2


def test_unbounded_capacity():
    cache = LRUCache(capacity=None)
    for i in range(1000):
        cache.put(i, i)
    assert len(cache) == 1000
    assert cache.stats.evictions == 0


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        LRUCache(capacity=0)


def test_cache_stats_repr_and_empty_rate():
    stats = CacheStats()
    assert stats.hit_rate == 0.0
    assert "hits=0" in repr(stats)


# ----------------------------------------------------------------------
# Thread safety (ISSUE 2 bugfix): concurrent QuerySession use shares
# the StatsCache/PlanCache, so the LRU must survive parallel mutation.
# ----------------------------------------------------------------------


def test_concurrent_mixed_access_is_safe():
    import threading

    cache = LRUCache(capacity=32)
    num_threads, ops = 8, 4_000
    errors = []
    barrier = threading.Barrier(num_threads)

    def hammer(worker):
        try:
            barrier.wait()
            for i in range(ops):
                key = (worker * i) % 64
                if i % 3 == 0:
                    cache.put(key, i)
                elif i % 97 == 0:
                    cache.clear()
                else:
                    cache.get(key)
                if i % 11 == 0:
                    cache.get_or_compute(key, lambda: key)
        except Exception as exc:  # pragma: no cover - the regression
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(w,))
        for w in range(num_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors, errors
    assert len(cache) <= 32
    stats = cache.stats
    # every get/get_or_compute counted exactly once: no lost updates
    expected_lookups = num_threads * (
        sum(1 for i in range(ops) if i % 3 != 0 and i % 97 != 0)
        + sum(1 for i in range(ops) if i % 11 == 0)
    )
    assert stats.lookups == expected_lookups
    assert stats.hits + stats.misses == stats.lookups


def test_get_or_compute_is_single_flight_per_key():
    import threading

    cache = LRUCache(capacity=8)
    calls = []
    barrier = threading.Barrier(6)

    def compute():
        calls.append(1)
        return "value"

    def worker():
        barrier.wait()
        assert cache.get_or_compute("key", compute) == "value"

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(calls) == 1  # computed once despite 6 concurrent misses


def test_slow_compute_does_not_block_other_keys():
    import threading
    import time

    cache = LRUCache(capacity=8)
    release = threading.Event()
    started = threading.Event()

    def slow():
        started.set()
        release.wait(timeout=5.0)
        return "slow-value"

    owner = threading.Thread(
        target=lambda: cache.get_or_compute("slow-key", slow)
    )
    owner.start()
    assert started.wait(timeout=5.0)
    # While slow-key is computing, other keys stay fully usable.
    t0 = time.perf_counter()
    cache.put("other", 1)
    assert cache.get("other") == 1
    assert cache.get_or_compute("third", lambda: 3) == 3
    elapsed = time.perf_counter() - t0
    release.set()
    owner.join(timeout=5.0)
    assert not owner.is_alive()
    assert elapsed < 1.0  # never waited on the slow computation
    assert cache.get("slow-key") == "slow-value"


def test_get_or_compute_failure_releases_waiters():
    import threading

    cache = LRUCache(capacity=8)
    attempts = []
    barrier = threading.Barrier(3)
    results = []

    def compute():
        attempts.append(threading.get_ident())
        if len(attempts) == 1:
            raise RuntimeError("first attempt fails")
        return "recovered"

    def worker():
        barrier.wait()
        try:
            results.append(cache.get_or_compute("key", compute))
        except RuntimeError:
            results.append("raised")

    threads = [threading.Thread(target=worker) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=5.0)
    # the failing owner raised; everyone else eventually got the value
    assert sorted(r for r in results if r == "raised") == ["raised"]
    assert [r for r in results if r == "recovered"] == ["recovered"] * 2
