"""End-to-end distributed execution through the service layer."""

import dataclasses

import numpy as np
import pytest

from repro.service.session import QuerySession

from tests.helpers import make_small_catalog, result_tuples

FOUR_RELATION_SQL = (
    "SELECT * FROM R1, R2, R3, R5 "
    "WHERE R1.B = R2.B AND R2.C = R3.C AND R1.E = R5.E"
)
TRIANGLE_SQL = (
    "SELECT * FROM R1, R2, R5 "
    "WHERE R1.B = R2.B AND R1.E = R5.E AND R2.C = R5.F"
)

COUNTER_FIELDS = None  # filled lazily to avoid import-order surprises


def assert_reports_identical(local_report, dist_report):
    global COUNTER_FIELDS
    if COUNTER_FIELDS is None:
        from repro.engine.executor import ExecutionCounters
        COUNTER_FIELDS = [
            f.name for f in dataclasses.fields(ExecutionCounters)
        ]
    assert local_report.ok, local_report.error
    assert dist_report.ok, dist_report.error
    assert dist_report.result.output_size == local_report.result.output_size
    if local_report.result.output_rows is not None:
        for relation, rows in local_report.result.output_rows.items():
            assert np.array_equal(
                rows, dist_report.result.output_rows[relation]
            ), relation
    for name in COUNTER_FIELDS:
        assert getattr(dist_report.result.counters, name) == \
            getattr(local_report.result.counters, name), name


@pytest.fixture
def catalog():
    return make_small_catalog()


class TestDistributedExecution:
    def test_matches_local_with_telemetry(self, catalog):
        local = QuerySession(catalog)
        dist = QuerySession(catalog, placement="distributed", num_workers=2)
        try:
            want = local.execute(FOUR_RELATION_SQL, collect_output=True)
            got = dist.execute(FOUR_RELATION_SQL, collect_output=True)
            assert_reports_identical(want, got)
            assert got.workers_used == 2
            assert got.scatter_seconds >= 0.0
            assert got.gather_seconds >= 0.0
            assert got.worker_retries == 0
            assert got.worker_events == ()
            # the placement descriptor rides on the raw result
            descriptor = got.result.placement
            assert descriptor["routing"] in ("hash", "stripe")
            covered = sorted(
                shard
                for shards in descriptor["shards_by_worker"].values()
                for shard in shards
            )
            assert covered == list(range(descriptor["num_shards"]))
            # local runs must not carry distributed telemetry
            assert want.workers_used == 0
        finally:
            dist.close()

    def test_hash_routed_partitioned_catalog(self, catalog):
        local = QuerySession(catalog, partitioning=4)
        dist = QuerySession(
            catalog, partitioning=4,
            placement="distributed", num_workers=2,
        )
        try:
            want = local.execute(FOUR_RELATION_SQL, collect_output=True)
            got = dist.execute(FOUR_RELATION_SQL, collect_output=True)
            assert_reports_identical(want, got)
            assert got.result.placement["routing"] == "hash"
            # the semi-join exchange annotated the routing relation
            sketches = got.result.placement.get("shard_sketches")
            if sketches:
                assert all(
                    entry["num_rows"] >= entry["num_distinct"] >= 0
                    for entry in sketches.values()
                )
        finally:
            dist.close()

    def test_warm_path_stays_distributed(self, catalog):
        dist = QuerySession(catalog, placement="distributed", num_workers=2)
        try:
            cold = dist.execute(FOUR_RELATION_SQL)
            warm = dist.execute(FOUR_RELATION_SQL)
            assert not cold.cache_hit and warm.cache_hit
            assert cold.workers_used == warm.workers_used == 2
            assert warm.result.output_size == cold.result.output_size
        finally:
            dist.close()

    def test_cyclic_tree_filter_distributes(self, catalog):
        local = QuerySession(catalog, cyclic_execution="tree_filter")
        dist = QuerySession(
            catalog, cyclic_execution="tree_filter",
            placement="distributed", num_workers=2,
        )
        try:
            want = local.execute(TRIANGLE_SQL, collect_output=True)
            got = dist.execute(TRIANGLE_SQL, collect_output=True)
            assert_reports_identical(want, got)
            assert got.workers_used == 2
        finally:
            dist.close()

    def test_wcoj_falls_back_to_local(self, catalog):
        local = QuerySession(catalog, cyclic_execution="wcoj")
        dist = QuerySession(
            catalog, cyclic_execution="wcoj",
            placement="distributed", num_workers=2,
        )
        try:
            want = local.execute(TRIANGLE_SQL, collect_output=True)
            got = dist.execute(TRIANGLE_SQL, collect_output=True)
            assert want.ok and got.ok
            assert got.workers_used == 0  # ran in-process
            assert result_tuples(got.result, got.plan.query) == \
                result_tuples(want.result, want.plan.query)
        finally:
            dist.close()

    def test_factorized_output_falls_back_to_local(self, catalog):
        dist = QuerySession(catalog, placement="distributed", num_workers=2)
        try:
            report = dist.execute(FOUR_RELATION_SQL, flat_output=False)
            assert report.ok, report.error
            assert report.workers_used == 0
            assert report.result.factorized is not None
        finally:
            dist.close()

    def test_execute_many_carries_telemetry(self, catalog):
        local = QuerySession(catalog)
        dist = QuerySession(catalog, placement="distributed", num_workers=2)
        try:
            queries = [FOUR_RELATION_SQL, TRIANGLE_SQL]
            want = local.execute_many(queries)
            got = dist.execute_many(queries)
            for one_local, one_dist in zip(want, got):
                assert one_local.ok and one_dist.ok
                assert one_dist.result.output_size == \
                    one_local.result.output_size
            # the acyclic query distributes; the triangle resolves to
            # wcoj under cyclic_execution="auto" and falls back local
            assert got[0].workers_used == 2
            assert got[1].workers_used == (
                2 if got[1].plan.cyclic_strategy != "wcoj" else 0
            )
        finally:
            dist.close()

    def test_per_query_placement_override(self, catalog):
        # a local session can opt one query into distribution...
        session = QuerySession(catalog)
        try:
            report = session.execute(
                FOUR_RELATION_SQL, placement="distributed", num_workers=2
            )
            assert report.ok, report.error
            assert report.workers_used == 2
            # ...and a distributed session can opt out per query
            dist = QuerySession(
                catalog, placement="distributed", num_workers=2
            )
            local_again = dist.execute(FOUR_RELATION_SQL, placement="local")
            assert local_again.ok and local_again.workers_used == 0
            dist.close()
        finally:
            session.close()

    def test_placement_is_plan_cache_keyed(self, catalog):
        from repro.core import parse_query

        session = QuerySession(catalog)
        parsed = parse_query(FOUR_RELATION_SQL)
        a = session.cache_key(parsed)
        b = session.cache_key(
            parsed, placement="distributed", num_workers=2
        )
        c = session.cache_key(
            parsed, placement="distributed", num_workers=4
        )
        assert a != b and b != c

    def test_budget_exceeded_surfaces_as_timeout(self, catalog):
        dist = QuerySession(catalog, placement="distributed", num_workers=2)
        try:
            report = dist.execute(
                FOUR_RELATION_SQL, max_intermediate_tuples=1
            )
            assert not report.ok
            assert report.timed_out
        finally:
            dist.close()

    def test_close_is_idempotent_and_restartable(self, catalog):
        dist = QuerySession(catalog, placement="distributed", num_workers=2)
        first = dist.execute(FOUR_RELATION_SQL)
        assert first.ok and dist._worker_pool is not None
        dist.close()
        dist.close()
        assert dist._worker_pool is None
        again = dist.execute(FOUR_RELATION_SQL)
        assert again.ok and again.workers_used == 2
        dist.close()


class TestPreparedStatements:
    def test_prepared_matches_local_across_bindings(self, catalog):
        sql = "select * from R1, R2 where R1.B = R2.B and R2.C = ?"
        baseline = QuerySession(catalog).prepare(sql)
        dist_session = QuerySession(
            catalog, placement="distributed", num_workers=2
        )
        statement = dist_session.prepare(sql)
        try:
            for constant in (0, 3, 5):
                want = baseline.execute(constant, collect_output=True)
                got = statement.execute(constant, collect_output=True)
                assert want.ok and got.ok, (want.error, got.error)
                assert got.workers_used == 2
                assert result_tuples(got.result, got.plan.query) == \
                    result_tuples(want.result, want.plan.query)
        finally:
            dist_session.close()
