"""Unit tests for the shard-to-worker placement policy."""

import dataclasses

import pytest

from repro.analysis import verify_plan, verify_spec
from repro.distributed import (
    PLACEMENT_CHOICES,
    ShardPlacement,
    rendezvous_score,
)
from repro.service.session import QuerySession

from tests.helpers import make_small_catalog

SQL = (
    "SELECT * FROM R1, R2, R3 "
    "WHERE R1.B = R2.B AND R2.C = R3.C"
)


class TestRendezvous:
    def test_deterministic_and_total(self):
        a = ShardPlacement.rendezvous(16, (0, 1, 2))
        b = ShardPlacement.rendezvous(16, (2, 1, 0))
        assert a.assignment == b.assignment  # order-insensitive
        assert len(a.assignment) == 16
        assert set(a.assignment) <= {0, 1, 2}
        a.validate()

    def test_scores_are_pure_integers(self):
        assert rendezvous_score(3, 1) == rendezvous_score(3, 1)
        assert rendezvous_score(3, 1) != rendezvous_score(3, 2)

    def test_without_moves_only_the_victims_shards(self):
        before = ShardPlacement.rendezvous(32, (0, 1, 2, 3))
        after = before.without(2)
        after.validate()
        assert 2 not in after.workers
        for shard in range(32):
            if before.worker_of(shard) != 2:
                assert after.worker_of(shard) == before.worker_of(shard)
            else:
                assert after.worker_of(shard) != 2

    def test_without_equals_rendezvous_over_survivors(self):
        # the minimal-movement property: dropping a worker from a
        # rendezvous placement IS the rendezvous placement of the rest
        lost = ShardPlacement.rendezvous(32, (0, 1, 2, 3)).without(1)
        fresh = ShardPlacement.rendezvous(32, (0, 2, 3))
        assert lost.assignment == fresh.assignment

    def test_without_last_worker_raises(self):
        placement = ShardPlacement.rendezvous(4, (0,))
        with pytest.raises(ValueError):
            placement.without(0)

    def test_striped_is_identity(self):
        placement = ShardPlacement.striped(3)
        assert placement.routing == "stripe"
        assert placement.assignment == (0, 1, 2)
        placement.validate()

    def test_validate_rejects_non_member_owner(self):
        placement = ShardPlacement(
            num_shards=2, workers=(0,), assignment=(0, 5)
        )
        with pytest.raises(ValueError):
            placement.validate()

    def test_validate_rejects_wrong_arity(self):
        placement = ShardPlacement(
            num_shards=3, workers=(0,), assignment=(0, 0)
        )
        with pytest.raises(ValueError):
            placement.validate()

    def test_describe_is_explainable(self):
        placement = ShardPlacement.rendezvous(
            4, (0, 1), routing_relation="R2", routing_attr="B"
        ).with_sketches({0: (10, 3), 1: (12, 4)})
        descriptor = placement.describe()
        assert descriptor["routing"] == "hash"
        assert descriptor["routing_relation"] == "R2"
        assert sorted(descriptor["assignment"]) == [0, 1, 2, 3]
        assert descriptor["shard_sketches"][0] == {
            "num_rows": 10, "num_distinct": 3
        }
        covered = sorted(
            shard for shards in descriptor["shards_by_worker"].values()
            for shard in shards
        )
        assert covered == [0, 1, 2, 3]


class TestPlanlintPlacement:
    def test_distributed_plan_verifies_clean(self):
        session = QuerySession(
            make_small_catalog(), placement="distributed", num_workers=2
        )
        plan = session.plan(SQL)
        assert plan.placement == "distributed"
        assert plan.num_workers == 2
        assert verify_plan(plan, source=SQL).ok

    def test_place002_on_bogus_placement(self):
        plan = QuerySession(make_small_catalog()).plan(SQL)
        broken = dataclasses.replace(plan, placement="sharded")
        result = verify_plan(broken, source=SQL)
        assert not result.ok
        assert "PLACE002" in {d.code for d in result.diagnostics}

    def test_place002_on_unresolved_worker_count(self):
        plan = QuerySession(make_small_catalog()).plan(SQL)
        broken = dataclasses.replace(
            plan, placement="distributed", num_workers=0
        )
        result = verify_plan(broken, source=SQL)
        assert "PLACE002" in {d.code for d in result.diagnostics}

    def test_place002_on_local_plan_with_workers(self):
        plan = QuerySession(make_small_catalog()).plan(SQL)
        broken = dataclasses.replace(plan, num_workers=3)
        result = verify_plan(broken, source=SQL)
        assert "PLACE002" in {d.code for d in result.diagnostics}

    def test_spec_carries_and_checks_placement(self):
        session = QuerySession(
            make_small_catalog(), placement="distributed", num_workers=2
        )
        plan = session.plan(SQL)
        spec = plan.to_spec(session.catalog.fingerprint())
        assert spec.placement == "distributed"
        assert spec.num_workers == 2
        assert verify_spec(spec, query=SQL).ok
        broken = dataclasses.replace(spec, num_workers=-1)
        result = verify_spec(broken, query=SQL)
        assert "PLACE002" in {d.code for d in result.diagnostics}

    def test_placement_choices_are_closed(self):
        assert PLACEMENT_CHOICES == ("local", "distributed")

    def test_knob_validation_at_construction(self):
        with pytest.raises(ValueError):
            QuerySession(make_small_catalog(), placement="remote")
        with pytest.raises(ValueError):
            QuerySession(make_small_catalog(), num_workers=-1)
