"""Partial-failure handling: worker deaths, sibling retry, clean errors."""

import numpy as np
import pytest

from repro.distributed import DistributedExecutionError
from repro.service.session import QuerySession

from tests.helpers import (
    KillingWorkerPool,
    killing_pool_factory,
    make_small_catalog,
)

SQL = (
    "SELECT * FROM R1, R2, R3, R5 "
    "WHERE R1.B = R2.B AND R2.C = R3.C AND R1.E = R5.E"
)


@pytest.fixture
def catalog():
    return make_small_catalog()


def test_one_death_retries_on_sibling_bit_identically(catalog):
    want = QuerySession(catalog).execute(SQL, collect_output=True)
    dist = QuerySession(catalog, placement="distributed", num_workers=2)
    dist._worker_pool_factory = killing_pool_factory({0})
    try:
        got = dist.execute(SQL, collect_output=True)
        assert got.ok, got.error
        assert dist._worker_pool.kills == 1
        assert got.worker_retries == 1
        assert len(got.worker_events) == 1
        assert "worker 0 died" in got.worker_events[0]
        # the survivor finished the victim's shards: same answer,
        # bit-identical counters
        assert got.result.output_size == want.result.output_size
        for relation, rows in want.result.output_rows.items():
            assert np.array_equal(rows, got.result.output_rows[relation])
        assert got.result.counters == want.result.counters
        # the served placement descriptor reflects the survivor set
        assert got.result.placement["workers"] == [1]
    finally:
        dist.close()


def test_exhausted_retries_error_cleanly_not_hang(catalog):
    dist = QuerySession(catalog, placement="distributed", num_workers=2)
    dist._worker_pool_factory = killing_pool_factory({0, 1})
    try:
        report = dist.execute(SQL)
        # both workers died; no live sibling remains — the query must
        # fail promptly with the recorded events, never hang
        assert not report.ok
        assert isinstance(report.error, DistributedExecutionError)
        assert "died" in str(report.error)
    finally:
        dist.close()


def test_zero_retry_budget_fails_on_first_death(catalog):
    dist = QuerySession(catalog, placement="distributed", num_workers=2)
    dist._worker_pool_factory = killing_pool_factory(
        {0}, max_retries=0
    )
    try:
        report = dist.execute(SQL)
        assert not report.ok
        assert isinstance(report.error, DistributedExecutionError)
        assert "max_retries=0" in str(report.error)
    finally:
        dist.close()


def test_pool_survives_a_failed_query(catalog):
    dist = QuerySession(catalog, placement="distributed", num_workers=2)
    dist._worker_pool_factory = killing_pool_factory({0}, max_retries=0)
    try:
        first = dist.execute(SQL)
        assert not first.ok
        # the victim's executor was retired; the next query lazily
        # respawns it and succeeds with the full pool
        second = dist.execute(SQL)
        assert second.ok, second.error
        assert second.workers_used == 2
        assert second.worker_retries == 0
    finally:
        dist.close()


def test_killing_pool_is_a_workerpool_otherwise(catalog):
    # sanity: with no victims the wrapper is behaviorally inert
    pool_holder = {}

    def factory(*args, **kwargs):
        pool = KillingWorkerPool(*args, victims=(), **kwargs)
        pool_holder["pool"] = pool
        return pool

    dist = QuerySession(catalog, placement="distributed", num_workers=2)
    dist._worker_pool_factory = factory
    try:
        report = dist.execute(SQL)
        assert report.ok, report.error
        assert pool_holder["pool"].kills == 0
        assert report.worker_retries == 0
    finally:
        dist.close()
