"""Shared fixtures, built on the factories in :mod:`tests.helpers`."""

from __future__ import annotations

import pytest

from tests.helpers import (
    make_running_example_query,
    make_running_example_stats,
    make_small_catalog,
)


@pytest.fixture
def running_example_query():
    return make_running_example_query()


@pytest.fixture
def running_example_stats():
    return make_running_example_stats()


@pytest.fixture
def small_catalog():
    return make_small_catalog()
