"""Tests for the random join-tree generator (Figure 10 setup)."""


from repro.workloads import random_join_tree, random_stats
from repro.workloads.random_trees import MATCH_PROBABILITY_RANGES


def test_respects_node_cap():
    for seed in range(20):
        query = random_join_tree(max_nodes=12, seed=seed)
        assert 2 <= query.num_relations <= 12


def test_degree_constraints():
    for seed in range(20):
        query = random_join_tree(max_nodes=20, seed=seed)
        root_degree = len(query.children(query.root))
        assert root_degree <= 5
        for rel in query.non_root_relations:
            assert len(query.children(rel)) <= 3


def test_deterministic():
    a = random_join_tree(max_nodes=15, seed=7)
    b = random_join_tree(max_nodes=15, seed=7)
    assert a.relations == b.relations
    assert [(e.parent, e.child) for e in a.edges] == [
        (e.parent, e.child) for e in b.edges
    ]


def test_always_has_an_edge():
    query = random_join_tree(max_nodes=2, seed=0)
    assert query.num_relations >= 2


def test_random_stats_in_range():
    query = random_join_tree(max_nodes=10, seed=1)
    stats = random_stats(query, (0.2, 0.4), (3.0, 5.0), seed=2)
    for rel in query.non_root_relations:
        assert 0.2 <= stats.m(rel) <= 0.4
        assert 3.0 <= stats.fo(rel) <= 5.0


def test_random_stats_deterministic():
    query = random_join_tree(max_nodes=10, seed=1)
    a = random_stats(query, (0.1, 0.9), seed=5)
    b = random_stats(query, (0.1, 0.9), seed=5)
    for rel in query.non_root_relations:
        assert a.m(rel) == b.m(rel)
        assert a.fo(rel) == b.fo(rel)


def test_paper_ranges_constant():
    assert (0.05, 0.2) in MATCH_PROBABILITY_RANGES
    assert (0.5, 0.9) in MATCH_PROBABILITY_RANGES
    assert len(MATCH_PROBABILITY_RANGES) == 4


def test_trees_vary_across_seeds():
    shapes = {
        tuple((e.parent, e.child) for e in
              random_join_tree(max_nodes=15, seed=s).edges)
        for s in range(10)
    }
    assert len(shapes) > 1
