"""Tests for the controlled synthetic data generator."""

import numpy as np
import pytest

from repro.core import stats_from_data
from repro.workloads import EdgeSpec, generate_dataset, specs_from_ranges, star
from repro.workloads.shapes import snowflake


def test_edge_spec_validation():
    with pytest.raises(ValueError):
        EdgeSpec(m=1.2, fo=2.0)
    with pytest.raises(ValueError):
        EdgeSpec(m=0.5, fo=0.5)
    with pytest.raises(ValueError):
        EdgeSpec(m=0.5, fo=2.0, fanout_dist="bogus")


def test_designed_stats_realized():
    query = snowflake(2, 1)
    specs = {
        rel: EdgeSpec(m=0.4, fo=3.0, dangling_fraction=0.1)
        for rel in query.non_root_relations
    }
    dataset = generate_dataset(query, 4000, specs, seed=1)
    stats = stats_from_data(dataset.catalog, query)
    for rel in query.non_root_relations:
        assert stats.m(rel) == pytest.approx(0.4, abs=0.04)
        assert stats.fo(rel) == pytest.approx(3.0, abs=0.25)


def test_fractional_fanout_realized():
    query = star(1)
    specs = {"R1": EdgeSpec(m=0.5, fo=2.5, dangling_fraction=0.0)}
    dataset = generate_dataset(query, 10_000, specs, seed=2)
    stats = stats_from_data(dataset.catalog, query)
    assert stats.fo("R1") == pytest.approx(2.5, abs=0.1)


def test_dangling_tuples_present():
    query = star(1)
    specs = {"R1": EdgeSpec(m=0.5, fo=2.0, dangling_fraction=0.5)}
    dataset = generate_dataset(query, 2000, specs, seed=3)
    child = dataset.catalog.table("R1")
    parent_keys = set(
        dataset.catalog.table("R0").column("k_R1").tolist()
    )
    child_keys = set(child.column("k").tolist())
    assert child_keys - parent_keys, "expected dangling child keys"


def test_max_relation_size_caps_growth():
    query = star(1)
    specs = {"R1": EdgeSpec(m=1.0, fo=10.0, dangling_fraction=0.0)}
    dataset = generate_dataset(query, 100_000, specs, seed=4,
                               max_relation_size=50_000)
    assert len(dataset.catalog.table("R1")) <= 55_000
    # Per-tuple statistics survive the key-domain reduction.
    stats = stats_from_data(dataset.catalog, query)
    assert stats.m("R1") == pytest.approx(1.0, abs=0.01)
    assert stats.fo("R1") == pytest.approx(10.0, rel=0.05)


def test_normal_fanout_distribution():
    query = star(1)
    specs = {"R1": EdgeSpec(m=1.0, fo=10.0, fanout_dist="normal",
                            fanout_sigma=4.0, dangling_fraction=0.0)}
    dataset = generate_dataset(query, 5000, specs, seed=5)
    keys = dataset.catalog.table("R1").column("k")
    counts = np.unique(keys, return_counts=True)[1]
    assert counts.mean() == pytest.approx(10.0, abs=1.0)
    assert counts.var() > 4.0
    # Truncation bounds: [1, 2*fo - 1].
    assert counts.min() >= 1
    assert counts.max() <= 19


def test_exponential_fanout_distribution():
    query = star(1)
    specs = {"R1": EdgeSpec(m=1.0, fo=10.0, fanout_dist="exponential",
                            dangling_fraction=0.0)}
    dataset = generate_dataset(query, 5000, specs, seed=6)
    keys = dataset.catalog.table("R1").column("k")
    counts = np.unique(keys, return_counts=True)[1]
    assert counts.mean() == pytest.approx(10.0, rel=0.15)
    # Exponential is much more skewed than the truncated normal.
    assert counts.var() > 30.0


def test_deterministic_given_seed():
    query = snowflake(2, 1)
    specs = specs_from_ranges(query, (0.2, 0.6), (1, 5), seed=9)
    a = generate_dataset(query, 1000, specs, seed=9)
    b = generate_dataset(query, 1000, specs, seed=9)
    for rel in query.relations:
        ta, tb = a.catalog.table(rel), b.catalog.table(rel)
        for col in ta.column_names:
            assert np.array_equal(ta.column(col), tb.column(col))


def test_specs_from_ranges_within_bounds():
    query = star(6)
    specs = specs_from_ranges(query, (0.1, 0.3), (2, 4), seed=11)
    assert len(specs) == 6
    for spec in specs.values():
        assert 0.1 <= spec.m <= 0.3
        assert 2.0 <= spec.fo <= 4.0


def test_relation_sizes_recorded():
    query = snowflake(2, 1)
    specs = specs_from_ranges(query, (0.3, 0.5), (2, 3), seed=13)
    dataset = generate_dataset(query, 1000, specs, seed=13)
    for rel in query.relations:
        assert dataset.relation_sizes[rel] == len(dataset.catalog.table(rel))
