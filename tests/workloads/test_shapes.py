"""Tests for the query-shape builders."""

import pytest

from repro.workloads import (
    PAPER_SHAPES,
    paper_path11,
    paper_snowflake_3_2,
    paper_snowflake_5_1,
    paper_star7,
    path,
    snowflake,
    star,
)


def test_star_shape():
    query = star(5)
    assert query.num_relations == 6
    assert all(query.parent(rel) == "R0" for rel in query.non_root_relations)
    with pytest.raises(ValueError):
        star(0)


def test_path_centre_driver():
    query = path(11)
    assert query.num_relations == 11
    # Centre driver: two arms.
    assert len(query.children("R0")) == 2
    depths = [query.depth(rel) for rel in query.relations]
    assert max(depths) == 5


def test_path_end_driver():
    query = path(5, driver_position=0)
    assert len(query.children("R0")) == 1
    assert max(query.depth(rel) for rel in query.relations) == 4


def test_path_validation():
    with pytest.raises(ValueError):
        path(1)
    with pytest.raises(ValueError):
        path(5, driver_position=9)


def test_snowflake_3_2():
    query = snowflake(3, 2)
    assert query.num_relations == 10
    assert len(query.children("R0")) == 3
    for child in query.children("R0"):
        assert len(query.children(child)) == 2


def test_snowflake_5_1():
    query = snowflake(5, 1)
    assert query.num_relations == 11
    assert len(query.children("R0")) == 5
    for child in query.children("R0"):
        assert len(query.children(child)) == 1


def test_snowflake_validation():
    with pytest.raises(ValueError):
        snowflake(0, 1)
    with pytest.raises(ValueError):
        snowflake(2, -1)


def test_paper_shapes_registry():
    assert set(PAPER_SHAPES) == {
        "star", "path", "snowflake_3_2", "snowflake_5_1"
    }
    assert paper_star7().num_relations == 7
    assert paper_path11().num_relations == 11
    assert paper_snowflake_3_2().num_relations == 10
    assert paper_snowflake_5_1().num_relations == 11


def test_edge_attribute_convention():
    query = snowflake(2, 1)
    for edge in query.edges:
        assert edge.parent_attr == f"k_{edge.child}"
        assert edge.child_attr == "k"
