"""Tests for the cyclic join-graph workload generators."""

import pytest

from repro.core import parse_query
from repro.workloads.cyclic import (
    CYCLIC_SHAPES,
    clique_query,
    cycle_query,
    cyclic_catalog,
    cyclic_scaling_suite,
    grid_query,
    to_sql,
)


def test_cycle_shape():
    parsed = cycle_query(6)
    assert len(parsed.relations) == 6
    assert len(parsed.join_predicates) == 6
    assert parsed.is_connected() and not parsed.is_acyclic()


def test_clique_shape():
    parsed = clique_query(5)
    assert len(parsed.join_predicates) == 10
    assert not parsed.is_acyclic()


def test_grid_shape():
    parsed = grid_query(3, 4)
    assert len(parsed.relations) == 12
    # 3*(4-1) horizontal + 4*(3-1) vertical edges
    assert len(parsed.join_predicates) == 17
    assert not parsed.is_acyclic()


def test_grid_rejects_degenerate_dimensions():
    with pytest.raises(ValueError, match="2 x 2"):
        grid_query(1, 8)  # a 1-row grid is a path, not cyclic


def test_shape_registry_produces_requested_sizes():
    for shape, build in CYCLIC_SHAPES.items():
        parsed = build(12)
        assert len(parsed.relations) == 12, shape
        assert not parsed.is_acyclic(), shape


def test_shape_registry_grid_rejects_primes():
    with pytest.raises(ValueError, match="composite"):
        CYCLIC_SHAPES["grid"](13)


def test_catalog_backs_every_predicate_column():
    parsed = grid_query(2, 3)
    catalog = cyclic_catalog(parsed, rows_per_relation=32, seed=3)
    for rel_a, attr_a, rel_b, attr_b in parsed.join_predicates:
        assert attr_a in catalog.table(rel_a).column_names
        assert attr_b in catalog.table(rel_b).column_names
    for alias in parsed.relations:
        assert len(catalog.table(alias)) == 32


def test_catalog_fixed_domain_bounds_keys():
    parsed = cycle_query(4)
    catalog = cyclic_catalog(parsed, rows_per_relation=64, key_domain=7,
                             seed=1)
    for alias in parsed.relations:
        for column in catalog.table(alias).column_names:
            values = catalog.table(alias).column(column)
            assert values.min() >= 0 and values.max() < 7


def test_to_sql_round_trips_through_the_parser():
    parsed = clique_query(4)
    reparsed = parse_query(to_sql(parsed))
    assert reparsed.relations == parsed.relations
    assert reparsed.join_predicates == parsed.join_predicates


def test_scaling_suite_cases():
    cases = cyclic_scaling_suite([6, 8], shapes=("cycle", "grid"), seed=2)
    assert [(shape, n) for shape, n, _, _ in cases] == [
        ("cycle", 6), ("cycle", 8), ("grid", 6), ("grid", 8),
    ]
    seen = set()
    for shape, n, parsed, catalog in cases:
        assert len(parsed.relations) == n
        fingerprint = catalog.fingerprint()
        assert fingerprint not in seen  # per-case seeds differ
        seen.add(fingerprint)
