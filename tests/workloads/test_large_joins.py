"""The large-join workload generators (chain / star / random tree)."""

import pytest

from repro.workloads.large_joins import (
    LARGE_SHAPES,
    chain_query,
    large_query_stats,
    random_tree_query,
    scaling_suite,
    star_query,
)


def test_chain_shape():
    query = chain_query(16)
    assert query.num_relations == 16
    assert query.root == "R0"
    # every node has at most one child: a path
    assert all(len(query.children(rel)) <= 1 for rel in query.relations)
    assert query.depth("R15") == 15


def test_star_shape():
    query = star_query(32)
    assert query.num_relations == 32
    assert len(query.children("R0")) == 31
    assert all(query.is_leaf(rel) for rel in query.non_root_relations)


@pytest.mark.parametrize("n", [2, 7, 33, 64])
def test_random_tree_is_a_valid_tree_of_requested_size(n):
    query = random_tree_query(n, seed=n)
    assert query.num_relations == n  # JoinQuery validates the tree shape


def test_random_tree_respects_max_children_and_is_seeded():
    query = random_tree_query(40, seed=9, max_children=2)
    assert all(len(query.children(rel)) <= 2 for rel in query.relations)
    again = random_tree_query(40, seed=9, max_children=2)
    assert [e for e in again.edges] == [e for e in query.edges]
    different = random_tree_query(40, seed=10, max_children=2)
    assert [e for e in different.edges] != [e for e in query.edges]


def test_degenerate_sizes_rejected():
    for build in (chain_query, star_query):
        with pytest.raises(ValueError):
            build(1)
    with pytest.raises(ValueError):
        random_tree_query(1)
    with pytest.raises(ValueError):
        random_tree_query(4, max_children=0)


def test_large_query_stats_ranges_and_determinism():
    query = star_query(20)
    stats = large_query_stats(
        query, m_range=(0.2, 0.4), fo_range=(1.0, 2.0), driver_size=500,
        seed=3,
    )
    assert stats.driver_size == 500.0
    for relation in query.non_root_relations:
        assert 0.2 <= stats.m(relation) <= 0.4
        assert 1.0 <= stats.fo(relation) <= 2.0
    same = large_query_stats(
        query, m_range=(0.2, 0.4), fo_range=(1.0, 2.0), driver_size=500,
        seed=3,
    )
    assert same.edge_stats == stats.edge_stats


def test_scaling_suite_covers_every_shape_and_size():
    cases = scaling_suite([8, 16], seed=1)
    assert len(cases) == len(LARGE_SHAPES) * 2
    seen = set()
    for shape, n, query, stats in cases:
        assert shape in LARGE_SHAPES
        assert query.num_relations == n
        assert set(stats.edge_stats) == set(query.non_root_relations)
        seen.add((shape, n))
    assert len(seen) == len(cases)  # no duplicated (shape, size) draws


def test_large_join_catalog_backs_every_relation():
    from repro.workloads.large_joins import large_join_catalog

    query = random_tree_query(10, seed=4)
    catalog = large_join_catalog(query, rows_per_relation=64, seed=4)
    assert set(catalog.table_names) == set(query.relations)
    for edge in query.edges:
        parent = catalog.table(edge.parent)
        child = catalog.table(edge.child)
        assert edge.parent_attr in parent.column_names
        assert edge.child_attr in child.column_names
        assert len(parent) == 64 and len(child) == 64
    # deterministic: same seed, same content
    again = large_join_catalog(query, rows_per_relation=64, seed=4)
    assert again.fingerprint() == catalog.fingerprint()


def test_large_join_catalog_is_plannable_end_to_end():
    from repro.planner import Planner
    from repro.workloads.large_joins import large_join_catalog

    query = chain_query(6)
    catalog = large_join_catalog(query, rows_per_relation=64, seed=5)
    plan = Planner(catalog).plan(query, mode="COM")
    result = plan.execute(collect_output=True)
    assert result.output_size >= 0
