"""Tests for the simulated CE-benchmark datasets."""

import numpy as np
import pytest

from repro.workloads import DATASET_FLAVORS, build_dataset


def test_all_five_flavors_present():
    assert set(DATASET_FLAVORS) == {
        "epinions", "imdb", "watdiv", "dblp", "yago"
    }


def test_unknown_flavor_rejected():
    with pytest.raises(KeyError, match="unknown dataset"):
        build_dataset("nope")


@pytest.mark.parametrize("name", sorted(DATASET_FLAVORS))
def test_build_small_scale(name):
    dataset = build_dataset(name, scale=0.1, seed=0)
    flavor = DATASET_FLAVORS[name]
    assert dataset.catalog.table_names == [
        rel_name for rel_name, _, _ in flavor.relations
    ]
    for rel_name, rows, columns in flavor.relations:
        table = dataset.catalog.table(rel_name)
        assert len(table) == max(2, int(round(rows * 0.1)))
        for column, _ in columns:
            assert column in table.column_names


def test_zipf_skew_present():
    dataset = build_dataset("yago", scale=0.3, seed=1)
    keys = dataset.catalog.table("linked_to").column("src")
    counts = np.unique(keys, return_counts=True)[1]
    # Heavy skew: the hottest key is much hotter than the median.
    assert counts.max() > 5 * np.median(counts)


def test_random_query_structure():
    dataset = build_dataset("epinions", scale=0.2, seed=2)
    query = dataset.random_query(num_relations=4, seed=3)
    assert query.num_relations == 4
    # Every edge joins columns over the same entity domain.
    for edge in query.edges:
        dom_parent = dataset.column_domains[(edge.parent, edge.parent_attr)]
        dom_child = dataset.column_domains[(edge.child, edge.child_attr)]
        assert dom_parent == dom_child


def test_random_query_output_cap():
    from repro.core import stats_from_data

    dataset = build_dataset("dblp", scale=0.2, seed=4)
    query = dataset.random_query(num_relations=4, seed=5,
                                 max_expected_output=50_000.0)
    stats = stats_from_data(dataset.catalog, query)
    expected = stats.driver_size
    for rel in query.non_root_relations:
        expected *= stats.selectivity(rel)
    assert expected <= 50_000.0


def test_random_queries_batch():
    dataset = build_dataset("watdiv", scale=0.2, seed=6)
    queries = dataset.random_queries(5, size_range=(3, 4), seed=7,
                                     max_expected_output=100_000.0)
    assert len(queries) == 5
    for query in queries:
        assert 3 <= query.num_relations <= 4


def test_deterministic_generation():
    a = build_dataset("imdb", scale=0.15, seed=9)
    b = build_dataset("imdb", scale=0.15, seed=9)
    for rel in a.catalog.table_names:
        ta, tb = a.catalog.table(rel), b.catalog.table(rel)
        for col in ta.column_names:
            assert np.array_equal(ta.column(col), tb.column(col))
