"""Tests for the DBLP-like estimation dataset (Figure 4 substrate)."""

import numpy as np

from repro.estimation import true_join_stats
from repro.workloads import build_estimation_dataset


def test_schema_and_columns():
    dataset = build_estimation_dataset(scale=0.3, seed=0)
    for name in ("writes", "cites", "published_in", "coauthor",
                 "venue_series", "author_topics", "awards"):
        table = dataset.catalog.table(name)
        assert "cat" in table.column_names
        assert "year" in table.column_names


def test_join_compatibility_metadata():
    dataset = build_estimation_dataset(scale=0.3, seed=0)
    assert dataset.join_columns[("writes", "author")] == "author"
    assert dataset.join_columns[("cites", "src")] == "paper"


def test_tasks_join_compatible_columns():
    dataset = build_estimation_dataset(scale=0.3, seed=1)
    tasks = dataset.random_tasks(20, seed=2)
    assert len(tasks) == 20
    for task in tasks:
        dom_a = dataset.join_columns[(task.probe_relation, task.probe_attr)]
        dom_b = dataset.join_columns[(task.build_relation, task.build_attr)]
        assert dom_a == dom_b
        assert task.probe_relation != task.build_relation


def test_predicates_optional():
    dataset = build_estimation_dataset(scale=0.3, seed=1)
    tasks = dataset.random_tasks(5, seed=3, with_predicates=False)
    for task in tasks:
        assert task.probe_predicate == {}
        assert task.build_predicate == {}


def test_predicate_correlation_exists():
    """The 'cat' column must correlate with the join key: the same key
    should mostly map to the same category (up to noise)."""
    dataset = build_estimation_dataset(scale=0.5, seed=4)
    table = dataset.catalog.table("writes")
    keys = table.column("author")
    cats = table.column("cat")
    agreement = []
    for key in np.unique(keys)[:200]:
        values = cats[keys == key]
        if len(values) >= 3:
            mode_share = np.bincount(values).max() / len(values)
            agreement.append(mode_share)
    assert np.mean(agreement) > 0.5


def test_low_match_probability_tasks_exist():
    dataset = build_estimation_dataset(scale=1.0, seed=5)
    tasks = dataset.random_tasks(60, seed=6)
    low = 0
    for task in tasks:
        probe = dataset.catalog.table(task.probe_relation)
        build = dataset.catalog.table(task.build_relation)
        truth = true_join_stats(probe, build, task.probe_attr,
                                task.build_attr, task.probe_predicate,
                                task.build_predicate)
        if truth.m < 0.05:
            low += 1
    assert low > 0


def test_deterministic():
    a = build_estimation_dataset(scale=0.3, seed=7)
    b = build_estimation_dataset(scale=0.3, seed=7)
    for rel in a.catalog.table_names:
        ta, tb = a.catalog.table(rel), b.catalog.table(rel)
        for col in ta.column_names:
            assert np.array_equal(ta.column(col), tb.column(col))
